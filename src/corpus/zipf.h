// Zipf-distributed sampling over ranks 0..n-1.
//
// Term occurrence in natural-language corpora is famously Zipfian; the
// synthetic WSJ substitute relies on this sampler so inverted-list length
// distributions have realistic skew (which is what the §5.2 I/O and PIR
// padding costs are sensitive to).

#ifndef EMBELLISH_CORPUS_ZIPF_H_
#define EMBELLISH_CORPUS_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace embellish::corpus {

/// \brief Samples ranks with P(k) proportional to 1 / (k+1)^s.
class ZipfSampler {
 public:
  /// \brief `n` must be >= 1; `s` is the skew exponent (1.0 is classic Zipf).
  ZipfSampler(size_t n, double s);

  /// \brief Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// \brief Probability mass of rank `k`.
  double Pmf(size_t k) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> pmf_;  // normalized masses; sums to 1 (up to rounding)
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.0
};

}  // namespace embellish::corpus

#endif  // EMBELLISH_CORPUS_ZIPF_H_
