#include "corpus/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace embellish::corpus {

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  pmf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    total += pmf_[k];
  }
  // Renormalize the masses themselves rather than clamping the CDF tail:
  // forcing cdf_.back() to 1.0 would silently fold any accumulated rounding
  // error into Pmf(n-1), over-weighting the rarest rank.
  cdf_.resize(n);
  double running = 0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] /= total;
    running += pmf_[k];
    cdf_[k] = running;
  }
  // Sample() must never run past the end on u ~ 1; the true mass lives in
  // pmf_, so this cannot distort Pmf.
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  assert(k < pmf_.size());
  return pmf_[k];
}

}  // namespace embellish::corpus
