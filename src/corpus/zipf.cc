#include "corpus/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace embellish::corpus {

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace embellish::corpus
