#include "corpus/corpus.h"

#include <algorithm>
#include <unordered_set>

namespace embellish::corpus {

Corpus::Corpus(std::vector<Document> documents)
    : documents_(std::move(documents)) {
  for (DocId i = 0; i < documents_.size(); ++i) {
    documents_[i].id = i;
    total_tokens_ += documents_[i].tokens.size();
    std::unordered_set<wordnet::TermId> seen;
    for (wordnet::TermId t : documents_[i].tokens) {
      if (seen.insert(t).second) ++doc_frequency_[t];
    }
  }
}

uint32_t Corpus::DocumentFrequency(wordnet::TermId term) const {
  auto it = doc_frequency_.find(term);
  return it == doc_frequency_.end() ? 0 : it->second;
}

std::vector<wordnet::TermId> Corpus::DistinctTerms() const {
  std::vector<wordnet::TermId> terms;
  terms.reserve(doc_frequency_.size());
  for (const auto& [term, freq] : doc_frequency_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  return terms;
}

std::string Corpus::RenderText(DocId id,
                               const wordnet::WordNetDatabase& db) const {
  std::string out;
  for (wordnet::TermId t : documents_[id].tokens) {
    if (!out.empty()) out.push_back(' ');
    out += db.term(t).text;
  }
  return out;
}

}  // namespace embellish::corpus
