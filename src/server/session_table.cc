#include "server/session_table.h"

namespace embellish::server {

SessionTable::Entry SessionTable::Find(uint64_t session_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? Entry{} : it->second;
}

void SessionTable::Touch(uint64_t session_id, uint64_t now) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end() && it->second.last_seen != nullptr) {
    it->second.last_seen->store(now, std::memory_order_relaxed);
  }
}

size_t SessionTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::pair<uint64_t, std::shared_ptr<const crypto::BenalohPublicKey>>>
SessionTable::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<
      std::pair<uint64_t, std::shared_ptr<const crypto::BenalohPublicKey>>>
      out;
  out.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) {
    out.emplace_back(id, entry.pk);
  }
  return out;
}

void SessionTable::SweepLocked(uint64_t now) {
  if (idle_frames_ == 0) return;
  uint64_t swept = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const uint64_t seen =
        it->second.last_seen != nullptr
            ? it->second.last_seen->load(std::memory_order_relaxed)
            : 0;
    // seen > now is possible: a concurrent Touch may have stored a
    // timestamp read from the clock after this sweep's `now`. Such an
    // entry is maximally fresh, not 2^64 frames idle — never sweep it.
    if (seen < now && now - seen > idle_frames_) {
      it = sessions_.erase(it);  // releases the (possibly superseded) key
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) expired_.fetch_add(swept, std::memory_order_relaxed);
}

bool SessionTable::Register(
    uint64_t session_id, std::shared_ptr<const crypto::BenalohPublicKey> pk,
    uint64_t now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (idle_frames_ > 0) {
    const bool stride_due = ++since_sweep_ >= kSweepStride;
    const bool at_capacity = sessions_.size() >= max_sessions_ &&
                             sessions_.count(session_id) == 0;
    if (stride_due || at_capacity) {
      SweepLocked(now);
      since_sweep_ = 0;
    }
  }
  if (sessions_.count(session_id) == 0 &&
      sessions_.size() >= max_sessions_) {
    return false;
  }
  sessions_[session_id] =
      Entry{std::move(pk), next_epoch_++,
            std::make_shared<std::atomic<uint64_t>>(now)};
  return true;
}

}  // namespace embellish::server
