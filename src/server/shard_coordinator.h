// The coordinator that lifts document-partitioned shards out of the server
// process: it speaks the same client-facing framed protocol as an
// EmbellishServer, but answers by fanning requests out to remote shard
// servers over ShardTransports and merging with the exact PR 3 merge logic,
// so its response frames are byte-identical to both the in-process sharded
// server and the monolithic server.
//
// Downstream protocol (per shard):
//   - every request is wrapped in a kShardRequest envelope carrying the
//     shard id, the coordinator's fencing epoch, and a per-request seq;
//     the shard echoes all three on its kShardResponse, so misrouted,
//     stale-coordinator, reordered or replayed responses are detected
//     instead of silently merged;
//   - an empty inner frame is a ping: Handshake() uses it to verify
//     liveness and learn the shared bucket_count from each shard;
//   - client hellos are forwarded to every shard (each shard registers the
//     session key under its own table; the PR 2 session/epoch semantics
//     apply per shard).
//
// Request routing:
//   kQuery      fan out to all shards; merge with core::MergeShardResults.
//   kTopKQuery  fan out to all shards; merge with index::MergeShardTopK.
//   kPirQuery   route to the one shard the shard-qualified bucket field
//               addresses (shard * bucket_count + bucket), rewriting the
//               field to the shard-local bucket.
//
// Fan-outs overlap: the per-shard round trips of one request run as tasks
// on the shared executor (bounded by options.fanout_threads), nested
// inside the batch region when the request arrived through HandleBatch —
// the coordinator no longer walks shards sequentially per request. An
// optional upstream response cache (options.cache_capacity) answers a
// session's recurring PR decoy sets before any shard round trip.
//
// Replication (construct with replica groups): each slice may be served by
// R transports, every one answering with bytes identical to the monolithic
// server's slice response. A logical shard round trip walks the group's
// replicas — healthy (circuit closed) replicas first — failing over on any
// transport-level fault, and may race a hedged duplicate against a slow
// primary on a second replica (options.hedge_delay_ms). Per-replica health
// is a consecutive-failure circuit breaker with probabilistic probe
// re-admission, so a dead replica costs capacity, not availability, and a
// healed one is re-discovered without operator action. Every attempt
// carries its own envelope seq under the coordinator's fencing epoch, so a
// duplicate, late, or stale response can never be merged twice or merged
// wrongly — each logical trip accepts exactly one response, matched by seq.
//
// Failure semantics: any transport failure, corrupt frame, or envelope
// mismatch on a shard round trip (after failover/retry exhausts the
// replica group) yields a typed kError response (usually
// StatusCode::kUnavailable) for the affected request — never a hang, crash,
// or a silent merge over partial results. With
// options.allow_partial_results set, PR and top-k requests whose surviving
// slices can still answer are merged and wrapped in a kDegradedResult frame
// that names the missing slices (documents are shard-disjoint, so the
// partial merge is exact over the surviving documents); PIR requests stay
// strict — the addressed slice either answers or the request errors.
// Application-level errors a shard returns (inner kError frames) pass
// through to the client unchanged. Requests that do not touch a faulted
// shard are unaffected. An in-flight budget (options.max_inflight) sheds
// excess load with typed kBusy errors instead of queueing without bound.

#ifndef EMBELLISH_SERVER_SHARD_COORDINATOR_H_
#define EMBELLISH_SERVER_SHARD_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "server/framing.h"
#include "server/response_cache.h"
#include "server/session_table.h"
#include "server/shard_transport.h"

namespace embellish::server {

// Fwd-declared; include server/async_frontend.h to call ServeAsync.
class AsyncFrontEnd;
class EventLoop;
struct AsyncFrontEndOptions;

/// \brief Coordinator construction knobs.
struct ShardCoordinatorOptions {
  /// Seed for the live fencing epoch stamped into every downstream
  /// envelope. A replacement coordinator should start with a higher epoch;
  /// shards then refuse the superseded one. AdvanceEpoch() bumps the live
  /// value at each index cutover.
  uint64_t epoch = 1;

  /// Maximum registered client sessions (the coordinator keeps each
  /// session's public key to decode and re-merge PR results).
  size_t max_sessions = 65536;

  /// Idle-session expiry horizon in handled frames, mirroring
  /// EmbellishServerOptions::session_idle_frames: a registration storm of
  /// throwaway ids must not pin keys (or lock genuine new sessions out)
  /// forever at the coordinator either. 0 disables expiry.
  uint64_t session_idle_frames = 1u << 20;

  /// Per-request cap on how many of a fan-out's shard round trips are in
  /// flight concurrently. Round trips run as tasks on the constructor's
  /// executor (there is no dedicated fan-out pool any more: fan-out
  /// regions nest inside batch regions on the one shared pool), so a
  /// coordinator overlaps its transport sends instead of walking shards
  /// sequentially. 0 — the default — overlaps all shards; 1 restores the
  /// sequential per-shard loop; N bounds one request's draw on the pool
  /// (fan-out tasks BLOCK on transport I/O, so the cap is what keeps a
  /// wide fan-out from pinning every worker). A coordinator constructed
  /// WITHOUT a pool but with fanout_threads > 1 spawns an owned executor
  /// of that width (the pre-executor dedicated fan-out pool, minus the
  /// old region collision); with a null pool and fanout_threads <= 1 the
  /// fan-out is sequential. All of the above applies to BLOCKING
  /// transports only: when every replica of a shard supports async
  /// submit (MultiplexedTransport), the fan-out submits all shards to
  /// the event loop and waits on completions — no pool tasks, no workers
  /// parked on sockets, and this cap is irrelevant.
  size_t fanout_threads = 0;

  /// Upstream response-cache capacity in entries; 0 (default) disables it.
  /// The cache reuses the server's bucket-set keying (kind, session,
  /// registration epoch, payload bytes) for PR query frames, so a
  /// session's recurring co-bucket decoy sets — byte-identical uplinks by
  /// session consistency — short-circuit before ANY shard round trip. The
  /// epoch component keeps a re-hello from ever being answered with bytes
  /// merged under a superseded key. Slice servers still cache per shard;
  /// this sits in front of the whole fan-out.
  size_t cache_capacity = 0;

  /// Coordinator response-cache budget in bytes (keys embed
  /// attacker-controlled payloads; the byte budget is the bound that
  /// holds).
  size_t cache_max_bytes = 64u << 20;

  /// Attempt budget for one logical shard round trip, counting the first
  /// send: each attempt goes to a different replica of the slice (healthy
  /// ones first), so a transport-level failure fails over instead of
  /// failing the request. 0 — the default — tries each replica once (one
  /// attempt on a single-replica group, which is exactly the pre-replica
  /// behavior); N caps the walk at N replicas.
  size_t max_attempts = 0;

  /// Hedged sends: when >= 0 and the coordinator has a pool and the slice
  /// has a second usable replica, a logical round trip arms a duplicate of
  /// the request for a *different* replica and fires it if the primary has
  /// not answered within this many milliseconds; first valid response wins.
  /// The hedge watcher runs as an executor task and is woken the moment the
  /// primary lands (it never sleeps past the primary), and every attempt
  /// has its own envelope seq, so the losing duplicate's response can never
  /// be merged — it fails its trip's seq echo by construction. 0 hedges
  /// immediately (a two-replica race). Negative — the default — disables
  /// hedging.
  int hedge_delay_ms = -1;

  /// Consecutive transport-level failures on one replica that open its
  /// circuit breaker: an open replica is ordered after healthy ones (tried
  /// only when every healthy replica has failed) until a probe re-admits
  /// it. Any success closes the breaker.
  uint32_t breaker_threshold = 3;

  /// Probability that a replica order fronts one circuit-open replica as a
  /// probe, giving a healed replica traffic to close its breaker with. 0
  /// disables probing (an open breaker then only closes via the
  /// everything-open fallback).
  double probe_probability = 0.125;

  /// Seed for the probe draw (deterministic tests pin it).
  uint64_t probe_seed = 0x9E3779B97F4A7C15ull;

  /// Opt-in partial results: when a whole replica group is unreachable,
  /// answer PR and top-k requests from the surviving slices, wrapped in a
  /// typed kDegradedResult frame naming the missing slices. Off — the
  /// default — keeps the strict behavior: any unreachable slice fails the
  /// request with a typed error.
  bool allow_partial_results = false;

  /// In-flight request budget across HandleFrame/HandleBatch; requests
  /// beyond it are shed with a typed kBusy error frame instead of queueing
  /// without bound. 0 — the default — disables admission control.
  size_t max_inflight = 0;
};

/// \brief Aggregate counters; a consistent snapshot via stats().
struct CoordinatorStats {
  uint64_t frames = 0;
  uint64_t hellos = 0;
  uint64_t queries = 0;
  uint64_t pir_queries = 0;
  uint64_t topk_queries = 0;
  uint64_t errors = 0;
  uint64_t shard_trips = 0;     ///< downstream round trips attempted
  uint64_t shard_failures = 0;  ///< round trips that failed (any layer)
  uint64_t sessions_expired = 0;  ///< idle sessions swept (keys released)
  uint64_t cache_hits = 0;      ///< PR responses served without any trip
  uint64_t cache_misses = 0;
  uint64_t retries = 0;       ///< failover attempts beyond a trip's first send
  uint64_t hedges_fired = 0;  ///< hedged duplicates actually sent
  uint64_t hedge_wins = 0;    ///< logical trips answered by the hedge
  uint64_t failovers = 0;     ///< trips answered by a non-primary replica
  uint64_t shed = 0;          ///< requests refused with kBusy (admission)
  uint64_t degraded_answers = 0;  ///< partial-merge responses produced
  uint64_t epoch_swaps = 0;   ///< AdvanceEpoch cutovers driven
  /// Physical replica attempts that parked the calling worker on blocking
  /// transport I/O. Zero in a fully multiplexed deployment — the acceptance
  /// invariant for the async fan-out: N overlapped round trips pin zero
  /// executor workers.
  uint64_t blocking_io_trips = 0;
  /// Physical replica attempts submitted through SubmitRoundTrip (the
  /// submitter returned immediately; the event loop completed the trip).
  uint64_t async_io_trips = 0;
  /// Summed wall-clock microseconds spent inside physical replica attempts
  /// (submit to completion). trip_micros / wall-clock elapsed is the
  /// in-flight-RTT overlap factor the coordinator bench reports: ~1 means
  /// sequential trips, ~N means N round trips genuinely in flight at once.
  uint64_t trip_micros = 0;
};

/// \brief Client-facing frame loop over remote shards.
class ShardCoordinator {
 public:
  /// \brief `transports[s]` carries shard `s`'s traffic and must outlive the
  ///        coordinator, as must `pool` (may be null: serial batches).
  ///        Equivalent to one single-replica group per slice.
  ShardCoordinator(std::vector<ShardTransport*> transports,
                   const ShardCoordinatorOptions& options = {},
                   ThreadPool* pool = nullptr);

  /// \brief Replicated construction: `replica_groups[s]` holds slice `s`'s
  ///        R transports, every replica serving byte-identical answers for
  ///        the slice. All transports (and `pool`) must outlive the
  ///        coordinator.
  ShardCoordinator(std::vector<std::vector<ShardTransport*>> replica_groups,
                   const ShardCoordinatorOptions& options = {},
                   ThreadPool* pool = nullptr);

  /// \brief Blocks until every in-flight async replica attempt has
  ///        completed (late hedge losers and orphaned failover attempts
  ///        reference coordinator state from their completions).
  ~ShardCoordinator();

  /// \brief Pings every shard: verifies liveness, fences the epoch, checks
  ///        each shard serves exactly one slice, and learns the shared
  ///        bucket_count (all shards must agree). Runs lazily on the first
  ///        request if not called; idempotent once it has succeeded.
  Status Handshake();

  /// \brief Drives an index cutover from the coordinator's side: bumps the
  ///        fencing epoch — from that instant any in-flight response still
  ///        carrying the superseded epoch fails its envelope echo and can
  ///        never be merged — then re-handshakes the (possibly restarted or
  ///        re-sharded) slice servers and re-pushes every registered
  ///        session's key to every replica, so established sessions survive
  ///        the cutover without a client-visible re-hello. Serialized
  ///        against concurrent AdvanceEpoch calls; concurrent request
  ///        traffic rides through (a request racing the bump may get a
  ///        typed kUnavailable for its fenced trip and simply retries).
  Status AdvanceEpoch();

  /// \brief The current fencing epoch stamped into downstream envelopes.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// \brief Same surface as EmbellishServer::HandleFrame — one request
  ///        frame in, always one response frame out.
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& request);

  /// \brief Batch dispatch over the constructor pool; `response[i]` answers
  ///        `requests[i]`, bit-identical to serial handling.
  std::vector<std::vector<uint8_t>> HandleBatch(
      const std::vector<std::vector<uint8_t>>& requests);

  /// \brief Serves this coordinator's HandleBatch behind an AsyncFrontEnd
  ///        on `loop` — with multiplexed shard transports on the same loop,
  ///        the full client-to-shard path runs without any thread blocked
  ///        on a socket. Takes ownership of `listen_fd`.
  Result<std::unique_ptr<AsyncFrontEnd>> ServeAsync(int listen_fd,
                                                    EventLoop* loop);
  Result<std::unique_ptr<AsyncFrontEnd>> ServeAsync(
      int listen_fd, EventLoop* loop, const AsyncFrontEndOptions& options);

  size_t shard_count() const { return replicas_.size(); }

  /// \brief Replicas serving slice `shard`.
  size_t replica_count(size_t shard) const { return replicas_[shard].size(); }

  /// \brief Shared bucket count learned from the handshake (0 before).
  size_t bucket_count() const {
    return bucket_count_.load(std::memory_order_acquire);
  }

  /// \brief The shard-qualified bucket field addressing (shard, bucket),
  ///        mirroring EmbellishServer::PirBucketField.
  size_t PirBucketField(size_t shard, size_t bucket) const {
    return shard * bucket_count() + bucket;
  }

  size_t session_count() const;
  CoordinatorStats stats() const;

 private:
  // One physical round trip to one replica: wrap `inner` for `shard`, send
  // on replica `replica`'s transport, validate the response envelope
  // (shard id / epoch / seq echo), and return the decoded inner frame.
  // Inner kError frames are returned as frames — the caller decides
  // whether to pass them through. Every other failure is a typed non-OK
  // status (Unavailable for transport/corruption faults). Updates the
  // replica's circuit breaker: success closes it, failure counts toward
  // breaker_threshold.
  Result<Frame> ReplicaTrip(size_t shard, size_t replica,
                            const std::vector<uint8_t>& inner);

  // The envelope for one physical attempt: seq is the per-attempt fencing
  // token SettleReplicaTrip validates against the response echo.
  std::vector<uint8_t> BuildShardRequest(size_t shard, uint64_t seq,
                                         const std::vector<uint8_t>& inner);

  // The response half of ReplicaTrip, shared verbatim by the blocking and
  // submit-and-await paths: decode, validate the (shard, epoch, seq) echo,
  // decode the inner frame, settle the replica's circuit breaker.
  Result<Frame> SettleReplicaTrip(size_t shard, size_t replica, uint64_t seq,
                                  Result<std::vector<uint8_t>> response);

  // One physical attempt through SubmitRoundTrip: the caller's thread
  // returns immediately; `done` runs with the settled outcome on whatever
  // thread completes the trip (the multiplexer's loop thread) and must not
  // block. Tracked in async_outstanding_ so the destructor can drain.
  void AsyncReplicaTrip(size_t shard, size_t replica,
                        const std::vector<uint8_t>& inner,
                        std::function<void(Result<Frame>)> done);

  // True when every replica of `shard` (resp. of every slice) supports
  // thread-safe non-blocking submission — the gate for the async fan-out
  // (mixed deployments keep the blocking path for correctness).
  bool AsyncCapable(size_t shard) const;
  bool AllAsyncCapable() const;

  // Submit-and-await fan-out: one logical trip per listed slice, all
  // submitted up front through the multiplexed transports, so N round
  // trips are in flight with ZERO workers parked on sockets — the awaiting
  // caller is the only blocked thread. Failover resubmits the next replica
  // from the completion callback; hedges fire from the awaiting caller at
  // their monotonic deadlines (no pool needed, unlike the blocking path).
  // out[i] answers shards[i].
  std::vector<Result<Frame>> AsyncFanOutShards(
      const std::vector<size_t>& shards, const std::vector<uint8_t>& inner);

  // Registration traffic, async flavor: one attempt per replica of every
  // slice, all in flight at once.
  std::vector<std::vector<Result<Frame>>> AsyncFanOutAllReplicas(
      const std::vector<uint8_t>& inner);

  // One *logical* round trip for the slice: walks ReplicaOrder(shard) —
  // failing over, optionally hedging the first attempt onto a second
  // replica — until a replica answers or the attempt budget is spent.
  Result<Frame> ShardRoundTrip(size_t shard,
                               const std::vector<uint8_t>& inner);

  // A primary/hedge pair raced on the executor: the primary sends
  // immediately; the watcher task fires the duplicate to `hedge` if the
  // primary has not landed within hedge_delay_ms (woken early the moment
  // it does). Returns the winning result and whether the hedge fired/won.
  struct HedgeOutcome {
    Result<Frame> result{Status::Internal("hedged trip not run")};
    bool hedge_fired = false;
    bool hedge_won = false;
    bool primary_failed = false;
  };
  HedgeOutcome HedgedTrip(size_t shard, size_t primary, size_t hedge,
                          const std::vector<uint8_t>& inner);

  // Replica indices of `shard` in send order: circuit-closed replicas
  // first (ascending, for determinism), circuit-open ones after; with
  // probe_probability, one open replica may be promoted to the front as a
  // re-admission probe.
  std::vector<size_t> ReplicaOrder(size_t shard);

  // Fans `inner` out to every slice (one *logical* trip per slice — each
  // with its own failover/hedging) — the trips overlap as executor tasks
  // on pool_, capped per request by options_.fanout_threads — and collects
  // the inner response frames in shard order.
  std::vector<Result<Frame>> FanOut(const std::vector<uint8_t>& inner);

  // Fans `inner` to every replica of every slice (registration traffic:
  // every replica needs the session key). out[s][r] is replica r's result.
  std::vector<std::vector<Result<Frame>>> FanOutAllReplicas(
      const std::vector<uint8_t>& inner);

  // Admission control: grants up to `want` in-flight slots (all of them
  // when max_inflight is 0). ReleaseInflight returns what was granted.
  size_t AcquireInflight(size_t want);
  void ReleaseInflight(size_t granted);

  // The typed kBusy response for a shed request.
  std::vector<uint8_t> BusyFrame();

  // Self-healing registration: re-sends the session's hello (rebuilt from
  // the coordinator's own key table) to every shard. True iff every shard
  // acknowledged. Used when a shard turns out to have lost the session —
  // restart, idle expiry on the shard, or a raced re-hello — so one stale
  // shard does not fail the session's queries forever.
  bool ReRegisterOnShards(uint64_t session_id,
                          const crypto::BenalohPublicKey& pk);

  std::vector<uint8_t> ProcessOne(const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandleHello(const Frame& frame,
                                   const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandleQuery(const Frame& frame,
                                   const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandlePirQuery(const Frame& frame);
  std::vector<uint8_t> HandleTopK(const Frame& frame,
                                  const std::vector<uint8_t>& request);
  std::vector<uint8_t> ErrorFrame(uint64_t session_id, const Status& status);

  // Forwards a shard's application-level error payload to the client
  // unchanged (counted as an error response).
  std::vector<uint8_t> PassThroughError(uint64_t session_id,
                                        const std::vector<uint8_t>& payload);

  // Lock-free counters: shard_trips is bumped once per round trip from
  // every batch worker concurrently, so the stat path must not contend a
  // mutex. stats() assembles a CoordinatorStats snapshot from these.
  struct AtomicStats {
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> hellos{0};
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> pir_queries{0};
    std::atomic<uint64_t> topk_queries{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> shard_trips{0};
    std::atomic<uint64_t> shard_failures{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> hedges_fired{0};
    std::atomic<uint64_t> hedge_wins{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> degraded_answers{0};
    std::atomic<uint64_t> epoch_swaps{0};
    std::atomic<uint64_t> blocking_io_trips{0};
    std::atomic<uint64_t> async_io_trips{0};
    std::atomic<uint64_t> trip_micros{0};
  };

  void Count(std::atomic<uint64_t> AtomicStats::*field) {
    (counters_.*field).fetch_add(1, std::memory_order_relaxed);
  }

  // replicas_[s][r]: replica r of slice s. Elements not owned.
  const std::vector<std::vector<ShardTransport*>> replicas_;
  const ShardCoordinatorOptions options_;
  // Spawned only when the caller passed no pool but asked for overlapped
  // fan-out (fanout_threads > 1); pool_ then points at it.
  std::unique_ptr<ThreadPool> owned_pool_;
  // One executor for batches AND per-request fan-outs: fan-out regions
  // nest inside batch regions and idle workers steal across them.
  ThreadPool* pool_;  // caller's pool or owned_pool_; null => all serial

  // Transports are plain blocking request/response channels with no
  // multiplexing, so round trips on one transport must not interleave.
  // transport_mu_[s][r] guards replicas_[s][r]; hedged duplicates go to a
  // different replica precisely so they never queue behind the slow
  // primary on its transport lock.
  std::vector<std::vector<std::unique_ptr<std::mutex>>> transport_mu_;

  // Circuit breakers: consecutive transport-level failures per replica.
  std::vector<std::vector<std::unique_ptr<std::atomic<uint32_t>>>>
      replica_failures_;

  // Probe draws for breaker re-admission (seeded; serialized — the draw is
  // a few ns against a blocking round trip).
  std::mutex probe_mu_;
  Rng probe_rng_;

  // In-flight request count against options_.max_inflight.
  std::atomic<size_t> inflight_{0};

  // In-flight async replica attempts (submitted, completion not yet
  // returned). The destructor waits for zero: a late hedge loser's
  // completion still runs SettleReplicaTrip against this coordinator.
  mutable std::mutex async_drain_mu_;
  std::condition_variable async_drain_cv_;
  size_t async_outstanding_ = 0;

  std::atomic<uint64_t> seq_{0};

  // The live fencing epoch (seeded from options_.epoch): every downstream
  // envelope stamps the current value, and SettleReplicaTrip validates the
  // echo against the current value too — so an AdvanceEpoch mid-flight
  // fences off the old generation's responses at the merge boundary.
  std::atomic<uint64_t> epoch_;

  // Serializes AdvanceEpoch cutovers (request traffic is not serialized
  // against them — the epoch bump IS the fence).
  std::mutex cutover_mu_;

  std::mutex handshake_mu_;
  // Lock-free fast path for the per-request handshake check; the mutex
  // serializes only the (rare) actual handshake attempts.
  std::atomic<bool> handshaken_{false};
  std::atomic<size_t> bucket_count_{0};

  // Logical clock for session idle tracking: handled frames.
  std::atomic<uint64_t> frame_clock_{0};

  // Registered client sessions (the coordinator keeps keys to decode and
  // re-merge PR results); bounded and idle-expiring like the server's.
  SessionTable sessions_;

  // Upstream PR response cache (see options.cache_capacity).
  ResponseCache cache_;

  AtomicStats counters_;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_SHARD_COORDINATOR_H_
