// The coordinator that lifts document-partitioned shards out of the server
// process: it speaks the same client-facing framed protocol as an
// EmbellishServer, but answers by fanning requests out to remote shard
// servers over ShardTransports and merging with the exact PR 3 merge logic,
// so its response frames are byte-identical to both the in-process sharded
// server and the monolithic server.
//
// Downstream protocol (per shard):
//   - every request is wrapped in a kShardRequest envelope carrying the
//     shard id, the coordinator's fencing epoch, and a per-request seq;
//     the shard echoes all three on its kShardResponse, so misrouted,
//     stale-coordinator, reordered or replayed responses are detected
//     instead of silently merged;
//   - an empty inner frame is a ping: Handshake() uses it to verify
//     liveness and learn the shared bucket_count from each shard;
//   - client hellos are forwarded to every shard (each shard registers the
//     session key under its own table; the PR 2 session/epoch semantics
//     apply per shard).
//
// Request routing:
//   kQuery      fan out to all shards; merge with core::MergeShardResults.
//   kTopKQuery  fan out to all shards; merge with index::MergeShardTopK.
//   kPirQuery   route to the one shard the shard-qualified bucket field
//               addresses (shard * bucket_count + bucket), rewriting the
//               field to the shard-local bucket.
//
// Fan-outs overlap: the per-shard round trips of one request run as tasks
// on the shared executor (bounded by options.fanout_threads), nested
// inside the batch region when the request arrived through HandleBatch —
// the coordinator no longer walks shards sequentially per request. An
// optional upstream response cache (options.cache_capacity) answers a
// session's recurring PR decoy sets before any shard round trip.
//
// Failure semantics: any transport failure, corrupt frame, or envelope
// mismatch on a shard round trip yields a typed kError response (usually
// StatusCode::kUnavailable) for the affected request — never a hang, crash,
// or a merge over partial results. Application-level errors a shard returns
// (inner kError frames) pass through to the client unchanged. Requests that
// do not touch a faulted shard are unaffected.

#ifndef EMBELLISH_SERVER_SHARD_COORDINATOR_H_
#define EMBELLISH_SERVER_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "server/framing.h"
#include "server/response_cache.h"
#include "server/session_table.h"
#include "server/shard_transport.h"

namespace embellish::server {

/// \brief Coordinator construction knobs.
struct ShardCoordinatorOptions {
  /// Fencing token stamped into every downstream envelope. A replacement
  /// coordinator should start with a higher epoch; shards then refuse the
  /// superseded one.
  uint64_t epoch = 1;

  /// Maximum registered client sessions (the coordinator keeps each
  /// session's public key to decode and re-merge PR results).
  size_t max_sessions = 65536;

  /// Idle-session expiry horizon in handled frames, mirroring
  /// EmbellishServerOptions::session_idle_frames: a registration storm of
  /// throwaway ids must not pin keys (or lock genuine new sessions out)
  /// forever at the coordinator either. 0 disables expiry.
  uint64_t session_idle_frames = 1u << 20;

  /// Per-request cap on how many of a fan-out's shard round trips are in
  /// flight concurrently. Round trips run as tasks on the constructor's
  /// executor (there is no dedicated fan-out pool any more: fan-out
  /// regions nest inside batch regions on the one shared pool), so a
  /// coordinator overlaps its transport sends instead of walking shards
  /// sequentially. 0 — the default — overlaps all shards; 1 restores the
  /// sequential per-shard loop; N bounds one request's draw on the pool
  /// (fan-out tasks BLOCK on transport I/O, so the cap is what keeps a
  /// wide fan-out from pinning every worker). A coordinator constructed
  /// WITHOUT a pool but with fanout_threads > 1 spawns an owned executor
  /// of that width (the pre-executor dedicated fan-out pool, minus the
  /// old region collision); with a null pool and fanout_threads <= 1 the
  /// fan-out is sequential. Caveat: the executor's eager wake-ups are
  /// clamped to spare *hardware* threads, so on a single-core machine
  /// overlap of these I/O-bound round trips only begins once a parked
  /// worker's idle rescan fires (~10 ms) — the ROADMAP's async request
  /// loop is the real fix for overlapping I/O without burning threads.
  size_t fanout_threads = 0;

  /// Upstream response-cache capacity in entries; 0 (default) disables it.
  /// The cache reuses the server's bucket-set keying (kind, session,
  /// registration epoch, payload bytes) for PR query frames, so a
  /// session's recurring co-bucket decoy sets — byte-identical uplinks by
  /// session consistency — short-circuit before ANY shard round trip. The
  /// epoch component keeps a re-hello from ever being answered with bytes
  /// merged under a superseded key. Slice servers still cache per shard;
  /// this sits in front of the whole fan-out.
  size_t cache_capacity = 0;

  /// Coordinator response-cache budget in bytes (keys embed
  /// attacker-controlled payloads; the byte budget is the bound that
  /// holds).
  size_t cache_max_bytes = 64u << 20;
};

/// \brief Aggregate counters; a consistent snapshot via stats().
struct CoordinatorStats {
  uint64_t frames = 0;
  uint64_t hellos = 0;
  uint64_t queries = 0;
  uint64_t pir_queries = 0;
  uint64_t topk_queries = 0;
  uint64_t errors = 0;
  uint64_t shard_trips = 0;     ///< downstream round trips attempted
  uint64_t shard_failures = 0;  ///< round trips that failed (any layer)
  uint64_t sessions_expired = 0;  ///< idle sessions swept (keys released)
  uint64_t cache_hits = 0;      ///< PR responses served without any trip
  uint64_t cache_misses = 0;
};

/// \brief Client-facing frame loop over remote shards.
class ShardCoordinator {
 public:
  /// \brief `transports[s]` carries shard `s`'s traffic and must outlive the
  ///        coordinator, as must `pool` (may be null: serial batches).
  ShardCoordinator(std::vector<ShardTransport*> transports,
                   const ShardCoordinatorOptions& options = {},
                   ThreadPool* pool = nullptr);

  /// \brief Pings every shard: verifies liveness, fences the epoch, checks
  ///        each shard serves exactly one slice, and learns the shared
  ///        bucket_count (all shards must agree). Runs lazily on the first
  ///        request if not called; idempotent once it has succeeded.
  Status Handshake();

  /// \brief Same surface as EmbellishServer::HandleFrame — one request
  ///        frame in, always one response frame out.
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& request);

  /// \brief Batch dispatch over the constructor pool; `response[i]` answers
  ///        `requests[i]`, bit-identical to serial handling.
  std::vector<std::vector<uint8_t>> HandleBatch(
      const std::vector<std::vector<uint8_t>>& requests);

  size_t shard_count() const { return transports_.size(); }

  /// \brief Shared bucket count learned from the handshake (0 before).
  size_t bucket_count() const {
    return bucket_count_.load(std::memory_order_acquire);
  }

  /// \brief The shard-qualified bucket field addressing (shard, bucket),
  ///        mirroring EmbellishServer::PirBucketField.
  size_t PirBucketField(size_t shard, size_t bucket) const {
    return shard * bucket_count() + bucket;
  }

  size_t session_count() const;
  CoordinatorStats stats() const;

 private:
  // One downstream round trip: wrap `inner` for `shard`, send, validate the
  // response envelope (shard id / epoch / seq echo), and return the decoded
  // inner frame. Inner kError frames are returned as frames — the caller
  // decides whether to pass them through. Every other failure is a typed
  // non-OK status (Unavailable for transport/corruption faults).
  Result<Frame> ShardRoundTrip(size_t shard,
                               const std::vector<uint8_t>& inner);

  // Fans `inner` out to every shard — the round trips overlap as executor
  // tasks on pool_, capped per request by options_.fanout_threads — and
  // collects the inner response frames in shard order.
  std::vector<Result<Frame>> FanOut(const std::vector<uint8_t>& inner);

  // Self-healing registration: re-sends the session's hello (rebuilt from
  // the coordinator's own key table) to every shard. True iff every shard
  // acknowledged. Used when a shard turns out to have lost the session —
  // restart, idle expiry on the shard, or a raced re-hello — so one stale
  // shard does not fail the session's queries forever.
  bool ReRegisterOnShards(uint64_t session_id,
                          const crypto::BenalohPublicKey& pk);

  std::vector<uint8_t> ProcessOne(const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandleHello(const Frame& frame,
                                   const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandleQuery(const Frame& frame,
                                   const std::vector<uint8_t>& request);
  std::vector<uint8_t> HandlePirQuery(const Frame& frame);
  std::vector<uint8_t> HandleTopK(const Frame& frame,
                                  const std::vector<uint8_t>& request);
  std::vector<uint8_t> ErrorFrame(uint64_t session_id, const Status& status);

  // Forwards a shard's application-level error payload to the client
  // unchanged (counted as an error response).
  std::vector<uint8_t> PassThroughError(uint64_t session_id,
                                        const std::vector<uint8_t>& payload);

  // Lock-free counters: shard_trips is bumped once per round trip from
  // every batch worker concurrently, so the stat path must not contend a
  // mutex. stats() assembles a CoordinatorStats snapshot from these.
  struct AtomicStats {
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> hellos{0};
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> pir_queries{0};
    std::atomic<uint64_t> topk_queries{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> shard_trips{0};
    std::atomic<uint64_t> shard_failures{0};
  };

  void Count(std::atomic<uint64_t> AtomicStats::*field) {
    (counters_.*field).fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<ShardTransport*> transports_;  // elements not owned
  const ShardCoordinatorOptions options_;
  // Spawned only when the caller passed no pool but asked for overlapped
  // fan-out (fanout_threads > 1); pool_ then points at it.
  std::unique_ptr<ThreadPool> owned_pool_;
  // One executor for batches AND per-request fan-outs: fan-out regions
  // nest inside batch regions and idle workers steal across them.
  ThreadPool* pool_;  // caller's pool or owned_pool_; null => all serial

  // Transports are plain blocking request/response channels with no
  // multiplexing, so round trips on one transport must not interleave.
  std::vector<std::unique_ptr<std::mutex>> transport_mu_;

  std::atomic<uint64_t> seq_{0};

  std::mutex handshake_mu_;
  // Lock-free fast path for the per-request handshake check; the mutex
  // serializes only the (rare) actual handshake attempts.
  std::atomic<bool> handshaken_{false};
  std::atomic<size_t> bucket_count_{0};

  // Logical clock for session idle tracking: handled frames.
  std::atomic<uint64_t> frame_clock_{0};

  // Registered client sessions (the coordinator keeps keys to decode and
  // re-merge PR results); bounded and idle-expiring like the server's.
  SessionTable sessions_;

  // Upstream PR response cache (see options.cache_capacity).
  ResponseCache cache_;

  AtomicStats counters_;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_SHARD_COORDINATOR_H_
