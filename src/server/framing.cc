#include "server/framing.h"

#include "common/endian.h"
#include "common/strings.h"

namespace embellish::server {

namespace {

// Bounds-checked sequential reader over an untrusted payload. Every length
// is validated against the bytes actually remaining before it is used, so
// no attacker-controlled value ever reaches an allocation or a pointer
// computation unchecked.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) {
      return Status::Corruption("payload truncated inside a u32 field");
    }
    uint32_t v = GetU32(data_ + pos_);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) {
      return Status::Corruption("payload truncated inside a u64 field");
    }
    uint64_t v = GetU64(data_ + pos_);
    pos_ += 8;
    return v;
  }

  Result<std::vector<uint8_t>> ReadBytes(size_t n) {
    if (remaining() < n) {
      return Status::Corruption(StringPrintf(
          "payload field wants %zu bytes but only %zu remain", n,
          remaining()));
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  Result<bignum::BigInt> ReadBigInt(size_t n) {
    EMB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadBytes(n));
    return bignum::BigInt::FromBigEndianBytes(bytes);
  }

  Status ExpectDone() const {
    if (pos_ != size_) {
      return Status::Corruption(
          StringPrintf("%zu trailing bytes after payload", size_ - pos_));
    }
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutPaddedBigInt(std::vector<uint8_t>* out, const bignum::BigInt& v,
                     size_t width) {
  std::vector<uint8_t> bytes = v.ToBigEndianBytesPadded(width);
  out->insert(out->end(), bytes.begin(), bytes.end());
}

}  // namespace

bool IsKnownFrameKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<uint8_t>(FrameKind::kDegradedResult);
}

uint32_t Fnv1a32(const uint8_t* data, size_t size, uint32_t seed) {
  uint32_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

std::vector<uint8_t> EncodeFrame(FrameKind kind, uint64_t session_id,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kFrameMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<uint8_t>(kind));
  out.push_back(0);  // flags
  out.push_back(0);
  PutU64(&out, session_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  uint32_t checksum = Fnv1a32(out.data(), out.size());
  checksum = Fnv1a32(payload.data(), payload.size(), checksum);
  PutU32(&out, checksum);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Frame> DecodeFrame(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::Corruption(StringPrintf(
        "frame shorter than its %zu-byte header", kFrameHeaderBytes));
  }
  // The declared payload size is compared against the bytes present, never
  // multiplied or used to size an allocation, so a hostile value is inert.
  const size_t payload_size = GetU32(bytes.data() + 16);
  if (bytes.size() - kFrameHeaderBytes != payload_size) {
    return Status::Corruption(StringPrintf(
        "frame declares %zu payload bytes but carries %zu", payload_size,
        bytes.size() - kFrameHeaderBytes));
  }
  // Checksum covers the header (minus the checksum field) and the payload;
  // verify before interpreting any field so a corrupted frame is rejected
  // no matter which bit flipped.
  uint32_t checksum = Fnv1a32(bytes.data(), 20);
  checksum = Fnv1a32(bytes.data() + kFrameHeaderBytes, payload_size, checksum);
  if (checksum != GetU32(bytes.data() + 20)) {
    return Status::Corruption("frame checksum mismatch");
  }
  if (GetU32(bytes.data()) != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  if (bytes[4] != kProtocolVersion) {
    return Status::Corruption(
        StringPrintf("unsupported protocol version %u", bytes[4]));
  }
  if (!IsKnownFrameKind(bytes[5])) {
    return Status::Corruption(StringPrintf("unknown frame kind %u", bytes[5]));
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    return Status::Corruption("reserved frame flags must be zero");
  }
  Frame frame;
  frame.version = bytes[4];
  frame.kind = static_cast<FrameKind>(bytes[5]);
  frame.session_id = GetU64(bytes.data() + 8);
  frame.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
  return frame;
}

// --- Hello ------------------------------------------------------------------

std::vector<uint8_t> EncodeHello(const crypto::BenalohPublicKey& pk) {
  std::vector<uint8_t> out;
  std::vector<uint8_t> n_bytes = pk.n().ToBigEndianBytesPadded(
      pk.CiphertextBytes());
  std::vector<uint8_t> g_bytes = pk.g().ToBigEndianBytesPadded(
      pk.CiphertextBytes());
  PutU32(&out, static_cast<uint32_t>(n_bytes.size()));
  out.insert(out.end(), n_bytes.begin(), n_bytes.end());
  PutU32(&out, static_cast<uint32_t>(g_bytes.size()));
  out.insert(out.end(), g_bytes.begin(), g_bytes.end());
  PutU64(&out, pk.r());
  return out;
}

Result<crypto::BenalohPublicKey> DecodeHello(
    const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t n_size, reader.ReadU32());
  if (n_size == 0 || n_size > kMaxHelloValueBytes) {
    return Status::Corruption(
        StringPrintf("hello modulus size %u outside (0, %zu]", n_size,
                     kMaxHelloValueBytes));
  }
  EMB_ASSIGN_OR_RETURN(bignum::BigInt n, reader.ReadBigInt(n_size));
  EMB_ASSIGN_OR_RETURN(uint32_t g_size, reader.ReadU32());
  if (g_size == 0 || g_size > kMaxHelloValueBytes) {
    return Status::Corruption(
        StringPrintf("hello generator size %u outside (0, %zu]", g_size,
                     kMaxHelloValueBytes));
  }
  EMB_ASSIGN_OR_RETURN(bignum::BigInt g, reader.ReadBigInt(g_size));
  EMB_ASSIGN_OR_RETURN(uint64_t r, reader.ReadU64());
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  // BenalohPublicKey's constructor builds a Montgomery context and requires
  // an odd modulus > 1; a hostile hello must not be able to trip that
  // precondition, so validate the arithmetic shape here.
  if (n.IsZero() || n.IsOne() || !n.IsOdd()) {
    return Status::Corruption("hello modulus must be odd and > 1");
  }
  if (g.IsZero() || !(g < n)) {
    return Status::Corruption("hello generator must lie in [1, n)");
  }
  if (r < 2) {
    return Status::Corruption("hello message space must be >= 2");
  }
  return crypto::BenalohPublicKey(std::move(n), std::move(g), r);
}

std::vector<uint8_t> EncodeHelloOk(size_t shard_count, size_t bucket_count) {
  std::vector<uint8_t> out;
  out.reserve(8);
  PutU32(&out, static_cast<uint32_t>(shard_count));
  PutU32(&out, static_cast<uint32_t>(bucket_count));
  return out;
}

Result<HelloOkPayload> DecodeHelloOk(const std::vector<uint8_t>& payload) {
  HelloOkPayload topology;
  if (payload.empty()) return topology;  // legacy monolithic server
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t shard_count, reader.ReadU32());
  EMB_ASSIGN_OR_RETURN(uint32_t bucket_count, reader.ReadU32());
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  if (shard_count == 0) {
    return Status::Corruption("hello-ok advertises zero shards");
  }
  topology.shard_count = shard_count;
  topology.bucket_count = bucket_count;
  return topology;
}

// --- Error ------------------------------------------------------------------

std::vector<uint8_t> EncodeError(const Status& status) {
  const std::string& msg = status.message();
  std::vector<uint8_t> out;
  out.reserve(1 + msg.size());
  out.push_back(static_cast<uint8_t>(status.code()));
  out.insert(out.end(), msg.data(), msg.data() + msg.size());
  return out;
}

Status DecodeError(const std::vector<uint8_t>& payload, Status* out) {
  if (payload.empty()) {
    return Status::Corruption("error payload missing its status code");
  }
  std::string msg(payload.begin() + 1, payload.end());
  switch (static_cast<StatusCode>(payload[0])) {
    case StatusCode::kInvalidArgument:
      *out = Status::InvalidArgument(std::move(msg));
      return Status::OK();
    case StatusCode::kNotFound:
      *out = Status::NotFound(std::move(msg));
      return Status::OK();
    case StatusCode::kOutOfRange:
      *out = Status::OutOfRange(std::move(msg));
      return Status::OK();
    case StatusCode::kFailedPrecondition:
      *out = Status::FailedPrecondition(std::move(msg));
      return Status::OK();
    case StatusCode::kCorruption:
      *out = Status::Corruption(std::move(msg));
      return Status::OK();
    case StatusCode::kNotSupported:
      *out = Status::NotSupported(std::move(msg));
      return Status::OK();
    case StatusCode::kInternal:
      *out = Status::Internal(std::move(msg));
      return Status::OK();
    case StatusCode::kCryptoError:
      *out = Status::CryptoError(std::move(msg));
      return Status::OK();
    case StatusCode::kIoError:
      *out = Status::IoError(std::move(msg));
      return Status::OK();
    case StatusCode::kUnavailable:
      *out = Status::Unavailable(std::move(msg));
      return Status::OK();
    case StatusCode::kBusy:
      *out = Status::Busy(std::move(msg));
      return Status::OK();
    case StatusCode::kOk:
      break;  // an OK code in an error frame is itself corruption
  }
  return Status::Corruption("error payload carries an invalid status code");
}

// --- PIR --------------------------------------------------------------------

std::vector<uint8_t> EncodePirQuery(size_t bucket,
                                    const crypto::PirQuery& query) {
  const size_t value_size = (query.n.BitLength() + 7) / 8;
  std::vector<uint8_t> out;
  out.reserve(12 + (1 + query.q.size()) * value_size);
  // Saturate rather than wrap: a shard-qualified bucket beyond the u32
  // field must decode to an out-of-range value the server rejects, never
  // silently address a different (shard, bucket) pair.
  PutU32(&out, bucket > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(bucket));
  PutU32(&out, static_cast<uint32_t>(value_size));
  PutU32(&out, static_cast<uint32_t>(query.q.size()));
  PutPaddedBigInt(&out, query.n, value_size);
  for (const bignum::BigInt& q : query.q) {
    PutPaddedBigInt(&out, q, value_size);
  }
  return out;
}

Result<PirQueryPayload> DecodePirQuery(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t bucket, reader.ReadU32());
  EMB_ASSIGN_OR_RETURN(uint32_t value_size, reader.ReadU32());
  EMB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (value_size == 0) {
    return Status::Corruption("PIR value size must be positive");
  }
  // Bound count by the bytes present before any size arithmetic (the
  // divisions cannot overflow; a product could).
  if (count > reader.remaining() / value_size) {
    return Status::Corruption(StringPrintf(
        "PIR query declares %u residues but holds %zu payload bytes", count,
        reader.remaining()));
  }
  PirQueryPayload out;
  out.bucket = bucket;
  EMB_ASSIGN_OR_RETURN(out.query.n, reader.ReadBigInt(value_size));
  out.query.q.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EMB_ASSIGN_OR_RETURN(bignum::BigInt q, reader.ReadBigInt(value_size));
    out.query.q.push_back(std::move(q));
  }
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  return out;
}

std::vector<uint8_t> EncodePirResponse(const crypto::PirResponse& response,
                                       size_t value_size) {
  std::vector<uint8_t> out;
  out.reserve(8 + response.gamma.size() * value_size);
  PutU32(&out, static_cast<uint32_t>(value_size));
  PutU32(&out, static_cast<uint32_t>(response.gamma.size()));
  for (const bignum::BigInt& g : response.gamma) {
    PutPaddedBigInt(&out, g, value_size);
  }
  return out;
}

Result<crypto::PirResponse> DecodePirResponse(
    const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t value_size, reader.ReadU32());
  EMB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (value_size == 0) {
    return Status::Corruption("PIR value size must be positive");
  }
  if (count > reader.remaining() / value_size) {
    return Status::Corruption(StringPrintf(
        "PIR response declares %u residues but holds %zu payload bytes",
        count, reader.remaining()));
  }
  crypto::PirResponse out;
  out.gamma.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EMB_ASSIGN_OR_RETURN(bignum::BigInt g, reader.ReadBigInt(value_size));
    out.gamma.push_back(std::move(g));
  }
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  return out;
}

// --- Top-k ------------------------------------------------------------------

std::vector<uint8_t> EncodeTopKQuery(
    size_t k, const std::vector<wordnet::TermId>& terms) {
  std::vector<uint8_t> out;
  out.reserve(8 + terms.size() * 4);
  PutU32(&out, k > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(k));
  PutU32(&out, static_cast<uint32_t>(terms.size()));
  for (wordnet::TermId t : terms) PutU32(&out, t);
  return out;
}

Result<TopKQueryPayload> DecodeTopKQuery(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t k, reader.ReadU32());
  EMB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  // Bound the attacker-controlled count by the bytes present before any
  // size arithmetic, like every other count field in this protocol.
  if (count > reader.remaining() / 4) {
    return Status::Corruption(StringPrintf(
        "top-k query declares %u terms but holds %zu payload bytes", count,
        reader.remaining()));
  }
  TopKQueryPayload out;
  out.k = k;
  out.terms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EMB_ASSIGN_OR_RETURN(uint32_t term, reader.ReadU32());
    out.terms.push_back(term);
  }
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  return out;
}

std::vector<uint8_t> EncodeTopKResult(
    const std::vector<index::ScoredDoc>& docs) {
  std::vector<uint8_t> out;
  out.reserve(4 + docs.size() * 12);
  PutU32(&out, static_cast<uint32_t>(docs.size()));
  for (const index::ScoredDoc& d : docs) {
    PutU32(&out, d.doc);
    PutU64(&out, d.score);
  }
  return out;
}

Result<std::vector<index::ScoredDoc>> DecodeTopKResult(
    const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > reader.remaining() / 12) {
    return Status::Corruption(StringPrintf(
        "top-k result declares %u docs but holds %zu payload bytes", count,
        reader.remaining()));
  }
  std::vector<index::ScoredDoc> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    index::ScoredDoc d;
    EMB_ASSIGN_OR_RETURN(d.doc, reader.ReadU32());
    EMB_ASSIGN_OR_RETURN(d.score, reader.ReadU64());
    out.push_back(d);
  }
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  return out;
}

// --- Shard envelope ---------------------------------------------------------

std::vector<uint8_t> EncodeShardEnvelope(size_t shard_id, uint64_t epoch,
                                         uint64_t seq,
                                         const std::vector<uint8_t>& inner) {
  std::vector<uint8_t> out;
  out.reserve(24 + inner.size());
  // Saturate rather than wrap, mirroring EncodePirQuery's bucket field: an
  // oversized shard id must decode to the reserved sentinel the decoder
  // rejects, never alias shard (id mod 2^32).
  PutU32(&out, shard_id > UINT32_MAX ? UINT32_MAX
                                     : static_cast<uint32_t>(shard_id));
  PutU64(&out, epoch);
  PutU64(&out, seq);
  PutU32(&out, static_cast<uint32_t>(inner.size()));
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

Result<ShardEnvelope> DecodeShardEnvelope(
    const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  EMB_ASSIGN_OR_RETURN(uint32_t shard_id, reader.ReadU32());
  if (shard_id == UINT32_MAX) {
    return Status::Corruption(
        "shard id is the reserved saturation sentinel");
  }
  ShardEnvelope out;
  out.shard_id = shard_id;
  EMB_ASSIGN_OR_RETURN(out.epoch, reader.ReadU64());
  EMB_ASSIGN_OR_RETURN(out.seq, reader.ReadU64());
  EMB_ASSIGN_OR_RETURN(uint32_t inner_size, reader.ReadU32());
  if (inner_size != reader.remaining()) {
    return Status::Corruption(StringPrintf(
        "shard envelope declares %u inner bytes but carries %zu", inner_size,
        reader.remaining()));
  }
  EMB_ASSIGN_OR_RETURN(out.inner, reader.ReadBytes(inner_size));
  EMB_RETURN_NOT_OK(reader.ExpectDone());
  return out;
}

// --- Degraded result --------------------------------------------------------

std::vector<uint8_t> EncodeDegradedResult(
    FrameKind inner_kind, const std::vector<uint32_t>& missing,
    const std::vector<uint8_t>& inner) {
  std::vector<uint8_t> out;
  out.reserve(5 + missing.size() * 4 + inner.size());
  out.push_back(static_cast<uint8_t>(inner_kind));
  PutU32(&out, static_cast<uint32_t>(missing.size()));
  for (uint32_t slice : missing) PutU32(&out, slice);
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

Result<DegradedResultPayload> DecodeDegradedResult(
    const std::vector<uint8_t>& payload) {
  if (payload.empty()) {
    return Status::Corruption("degraded result missing its inner kind");
  }
  // Only the shard-disjoint merge kinds may be marked degraded: a partial
  // PIR answer would be a wrong answer, not a smaller one.
  const uint8_t inner_kind = payload[0];
  if (inner_kind != static_cast<uint8_t>(FrameKind::kResult) &&
      inner_kind != static_cast<uint8_t>(FrameKind::kTopKResult)) {
    return Status::Corruption(StringPrintf(
        "degraded result wraps non-mergeable inner kind %u", inner_kind));
  }
  const std::vector<uint8_t> rest(payload.begin() + 1, payload.end());
  PayloadReader reader(rest);
  EMB_ASSIGN_OR_RETURN(uint32_t missing_count, reader.ReadU32());
  if (missing_count == 0) {
    return Status::Corruption(
        "degraded result marks no slice missing (a full answer must not "
        "carry the degraded marker)");
  }
  if (missing_count > reader.remaining() / 4) {
    return Status::Corruption(StringPrintf(
        "degraded result declares %u missing slices but holds %zu payload "
        "bytes", missing_count, reader.remaining()));
  }
  DegradedResultPayload out;
  out.inner_kind = static_cast<FrameKind>(inner_kind);
  out.missing.reserve(missing_count);
  for (uint32_t i = 0; i < missing_count; ++i) {
    EMB_ASSIGN_OR_RETURN(uint32_t slice, reader.ReadU32());
    if (!out.missing.empty() && slice <= out.missing.back()) {
      return Status::Corruption(
          "degraded-result missing slices must be strictly ascending");
    }
    out.missing.push_back(slice);
  }
  EMB_ASSIGN_OR_RETURN(out.inner_payload, reader.ReadBytes(reader.remaining()));
  return out;
}

}  // namespace embellish::server
