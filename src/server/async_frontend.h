// The async client-facing front end: an accept/read/dispatch/write pipeline
// on one EventLoop, where no thread ever blocks on a socket.
//
// The blocking serving loops (ServeShardConnections, the test harnesses)
// dedicate a thread per connection and park it in recv between frames — a
// slow or trickling client pins that thread for its connection's lifetime.
// The AsyncFrontEnd replaces that shape:
//
//   accept    the listener is level-triggered on the loop; accepts drain
//             until EAGAIN, each connection getting loop-confined state
//             (FrameReader, FrameWriter, ordering tickets) keyed by a
//             monotonically increasing connection id — NOT the fd, which
//             the kernel recycles;
//   read      readable sockets Pump into their FrameReader under a per-call
//             byte budget, so a firehosing client yields the loop back; a
//             byte-at-a-time trickler costs exactly its bytes, never a
//             parked thread (slow-client isolation);
//   dispatch  complete frames are ticketed and queued to a small pool of
//             dispatcher threads that call the batch handler (the
//             EmbellishServer / ShardCoordinator HandleBatch surface, whose
//             response bytes are untouched by any of this). The queue is
//             bounded: overflow is shed immediately with a typed kBusy
//             error frame, not queued without bound. dispatch_threads = 0
//             is the zero-worker fallback for 1-core boxes: the handler
//             runs synchronously on the loop thread, one frame at a time.
//   write     responses post back to the loop, are re-sequenced per
//             connection by ticket (concurrent batches must not reorder one
//             connection's responses), and drain through the FrameWriter as
//             the socket accepts them. A connection whose outbox exceeds
//             outbox_high_water stops being read until it drains below half
//             — per-connection backpressure instead of unbounded buffering.
//
// A disconnect mid-frame is counted and frees the connection's state
// immediately: no fd, session buffer, or ticket map outlives its
// connection.

#ifndef EMBELLISH_SERVER_ASYNC_FRONTEND_H_
#define EMBELLISH_SERVER_ASYNC_FRONTEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "server/event_loop.h"
#include "server/io_util.h"

namespace embellish::server {

struct AsyncFrontEndOptions {
  /// Dispatcher threads running the batch handler. 0 runs the handler
  /// synchronously on the loop thread — the zero-worker fallback for
  /// single-core deployments (correct, no overlap with socket work).
  size_t dispatch_threads = 1;

  /// Most frames one handler call receives (across connections).
  size_t max_batch = 8;

  /// Bound on frames queued for dispatch; overflow is shed with kBusy.
  size_t max_pending = 4096;

  /// Largest frame a client may declare.
  size_t max_frame_bytes = (64u << 20) + 24;

  /// A connection's outbox size that pauses reading it (resumes at half).
  size_t outbox_high_water = 4u << 20;

  /// Open-connection cap; 0 is unlimited. Excess accepts close immediately.
  size_t max_connections = 0;
};

struct AsyncFrontEndStats {
  size_t connections_accepted = 0;
  size_t connections_closed = 0;
  size_t connections_refused = 0;  ///< over max_connections
  size_t frames_in = 0;            ///< complete request frames read
  size_t responses_out = 0;        ///< response frames fully handed to send
  size_t shed = 0;                 ///< frames refused with kBusy (queue full)
  size_t mid_frame_disconnects = 0;
  size_t open_connections = 0;     ///< gauge, not cumulative
};

/// \brief Event-loop front end for any HandleBatch-shaped server.
class AsyncFrontEnd {
 public:
  /// \brief `responses[i]` must answer `requests[i]`; called from dispatcher
  ///        threads (or the loop thread when dispatch_threads == 0).
  using BatchHandler = std::function<std::vector<std::vector<uint8_t>>(
      const std::vector<std::vector<uint8_t>>&)>;

  /// \brief Takes ownership of `listen_fd` (made non-blocking) and serves it
  ///        on `loop`, which must be started, outlive the front end, and not
  ///        be stopped before Shutdown().
  static Result<std::unique_ptr<AsyncFrontEnd>> Create(
      int listen_fd, EventLoop* loop, BatchHandler handler,
      const AsyncFrontEndOptions& options = {});

  /// \brief Shutdown() then join.
  ~AsyncFrontEnd();
  AsyncFrontEnd(const AsyncFrontEnd&) = delete;
  AsyncFrontEnd& operator=(const AsyncFrontEnd&) = delete;

  /// \brief Stops accepting, closes every connection, drains and joins the
  ///        dispatcher threads. Idempotent; callable from any thread except
  ///        the loop thread.
  void Shutdown();

  AsyncFrontEndStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    FrameWriter writer;
    bool reading_paused = false;
    uint64_t next_ticket = 0;   // assigned to frames in arrival order
    uint64_t next_to_send = 0;  // re-sequencing cursor for responses
    std::map<uint64_t, std::vector<uint8_t>> ready;  // out-of-order responses
    explicit Conn(size_t max_frame_bytes) : reader(max_frame_bytes) {}
  };

  struct Work {
    uint64_t conn_id = 0;
    uint64_t ticket = 0;
    std::vector<uint8_t> frame;
  };

  AsyncFrontEnd(int listen_fd, EventLoop* loop, BatchHandler handler,
                const AsyncFrontEndOptions& options);

  Status Start();
  void DispatcherMain();

  // All of the below run on the loop thread.
  void OnAcceptable();
  void OnConnEvent(uint64_t conn_id, uint32_t events);
  void DispatchFrame(uint64_t conn_id, std::vector<uint8_t> frame);
  void Deliver(uint64_t conn_id, uint64_t ticket, std::vector<uint8_t> response);
  void FlushConn(uint64_t conn_id, Conn& conn);
  void UpdateReadInterest(Conn& conn);
  void CloseConn(uint64_t conn_id);
  void TeardownInLoop();

  EventLoop* const loop_;  // not owned
  const BatchHandler handler_;
  const AsyncFrontEndOptions options_;

  // Loop-confined.
  int listen_fd_ = -1;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Conn> conns_;

  // Dispatch queue (shared with dispatcher threads).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;
  bool stopping_ = false;
  std::vector<std::thread> dispatchers_;
  std::atomic<bool> shutdown_done_{false};

  std::atomic<size_t> connections_accepted_{0};
  std::atomic<size_t> connections_closed_{0};
  std::atomic<size_t> connections_refused_{0};
  std::atomic<size_t> frames_in_{0};
  std::atomic<size_t> responses_out_{0};
  std::atomic<size_t> shed_{0};
  std::atomic<size_t> mid_frame_disconnects_{0};
  std::atomic<size_t> open_connections_{0};
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_ASYNC_FRONTEND_H_
