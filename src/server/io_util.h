// Shared socket I/O primitives for the framed wire protocol.
//
// Two families live here:
//
//   Blocking-with-deadline helpers — ReadExactly / WriteAll / ReadFrameFd —
//   the one copy of the bounded read-exactly / write-all loops that
//   TcpTransport, ServeShardConnections and the test harnesses previously
//   each carried. All waits are poll()-based against an absolute
//   CLOCK_MONOTONIC deadline, so (a) a trickling peer cannot extend a round
//   trip indefinitely the way per-syscall SO_RCVTIMEO timeouts allowed (each
//   progressing byte reset the timer), and (b) a wall-clock step can never
//   spuriously expire — or indefinitely extend — an in-flight operation.
//
//   Incremental frame state machines — FrameReader / FrameWriter — the
//   resumable encode/decode halves the event loop runs over non-blocking
//   fds. They own their buffers, parse exactly the header layout framing.h
//   defines (payload size at offset 16, bounded before any allocation), and
//   hand out complete raw frames for DecodeFrame to validate — the wire
//   bytes and the checksum/validation logic are untouched; only the
//   blocking-ness of their assembly changed.

#ifndef EMBELLISH_SERVER_IO_UTIL_H_
#define EMBELLISH_SERVER_IO_UTIL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace embellish::server {

/// \brief Sentinel for "no deadline" in the blocking helpers.
inline constexpr int64_t kNoDeadline = -1;

/// \brief Milliseconds on CLOCK_MONOTONIC — the only clock I/O deadlines
///        are allowed to reference (wall clocks step; monotonic does not).
int64_t MonotonicMillis();

/// \brief Absolute monotonic deadline `timeout_ms` from now (kNoDeadline
///        when `timeout_ms` < 0).
int64_t DeadlineFromNow(int timeout_ms);

/// \brief Puts `fd` into O_NONBLOCK mode.
Status SetNonBlocking(int fd);

/// \brief Clears O_NONBLOCK on `fd`.
Status SetBlocking(int fd);

/// \brief Connects a TCP socket to `host:port` (numeric IPv4) under a
///        monotonic connect deadline: non-blocking connect + poll, then
///        SO_ERROR — never a wall-clock-sensitive blocking connect. The
///        returned fd is in O_NONBLOCK mode with TCP_NODELAY set; blocking
///        callers follow up with SetBlocking.
Result<int> ConnectWithDeadline(const std::string& host, uint16_t port,
                                int timeout_ms);

/// \brief A non-blocking connect in flight (or already done, for loopback).
struct ConnectStart {
  int fd = -1;
  bool connected = false;  ///< false: await POLLOUT/EPOLLOUT, check SO_ERROR
};

/// \brief Begins a non-blocking TCP connect to `host:port` (numeric IPv4)
///        and returns immediately: the building block for event-loop
///        reconnects that must never block the loop thread. The fd is
///        O_NONBLOCK with TCP_NODELAY set. When `connected` is false the
///        caller waits for writability and then reads SO_ERROR to learn the
///        outcome (ConnectWithDeadline is exactly that, with a poll()).
Result<ConnectStart> StartConnect(const std::string& host, uint16_t port);

/// \brief Writes all `size` bytes, handling EINTR and partial writes, with
///        MSG_NOSIGNAL (a dead peer is EPIPE, never SIGPIPE). `deadline_ms`
///        is an absolute MonotonicMillis() deadline bounding the WHOLE
///        write; kNoDeadline blocks until completion or error. Works on
///        blocking and non-blocking fds alike (would-block waits in poll).
Status WriteAll(int fd, const uint8_t* data, size_t size,
                int64_t deadline_ms = kNoDeadline);

/// \brief Reads exactly `size` bytes, handling EINTR and partial reads,
///        bounded by the same absolute-monotonic-deadline contract as
///        WriteAll. A clean EOF (or any error) is Unavailable.
Status ReadExactly(int fd, uint8_t* data, size_t size,
                   int64_t deadline_ms = kNoDeadline);

/// \brief Reads one complete frame off `fd`: the fixed header first (whose
///        declared payload size is bounded by `max_frame_bytes` before any
///        allocation), then the payload. The deadline bounds the whole
///        frame, not each syscall.
Result<std::vector<uint8_t>> ReadFrameFd(int fd, size_t max_frame_bytes,
                                         int64_t deadline_ms = kNoDeadline);

// --- Incremental state machines ---------------------------------------------

/// \brief Resumable frame assembly over a non-blocking fd. Pump() drains
///        whatever the socket currently holds into the owned buffer;
///        Next() peels complete raw frames off it. A frame split across any
///        number of reads — down to one byte at a time — assembles
///        identically to a blocking read; a declared payload beyond
///        `max_frame_bytes` is detected from the header alone, before any
///        allocation or further buffering.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes);

  /// \brief Non-blocking read pump. Returns ok(true) while the peer is
  ///        still connected (stopped at would-block or the per-call byte
  ///        budget), ok(false) on clean EOF, and an error status on socket
  ///        errors or an oversized declared frame. The per-call budget
  ///        keeps one firehosing connection from starving its siblings on
  ///        a level-triggered loop — unread bytes stay in the kernel buffer
  ///        and re-arm the next epoll wake.
  Result<bool> Pump(int fd);

  /// \brief Extracts the next complete frame into `*frame`. ok(true) when
  ///        one was produced, ok(false) when more bytes are needed;
  ///        Corruption when the buffered header declares an oversized
  ///        payload (the connection is no longer frame-aligned).
  Result<bool> Next(std::vector<uint8_t>* frame);

  /// \brief True when a partial frame is buffered — a disconnect now is a
  ///        mid-frame disconnect.
  bool mid_frame() const { return buffered_bytes() != 0; }

  size_t buffered_bytes() const { return buf_.size() - pos_; }

  /// \brief Drops all buffered bytes — for reuse across reconnects (stale
  ///        partial frames from a dead connection must never prefix the new
  ///        one's stream).
  void Reset() {
    buf_.clear();
    pos_ = 0;
  }

 private:
  // No complete frame buffered: compact the consumed prefix when it has
  // grown past a chunk, then report "need more bytes".
  Result<bool> CompactAndWait();

  const size_t max_frame_bytes_;
  std::vector<uint8_t> buf_;  // owned accumulation buffer
  size_t pos_ = 0;            // parse cursor into buf_
};

/// \brief Resumable frame emission over a non-blocking fd: Enqueue whole
///        encoded frames, Flush() as far as the socket accepts, resume
///        after the next writability wake. Byte order is exactly enqueue
///        order — responses cannot interleave mid-frame.
class FrameWriter {
 public:
  void Enqueue(std::vector<uint8_t> frame);

  /// \brief Writes queued bytes until drained or would-block. ok(true)
  ///        when everything queued has been written, ok(false) when bytes
  ///        remain and the socket is full; errors are fatal to the
  ///        connection (a partially written frame cannot be resynced).
  Result<bool> Flush(int fd);

  bool empty() const { return queue_.empty(); }
  size_t pending_bytes() const { return pending_bytes_; }

  /// \brief Drops everything queued (reconnect: a partially sent frame is
  ///        unrecoverable on a new connection).
  void Reset() {
    queue_.clear();
    head_offset_ = 0;
    pending_bytes_ = 0;
  }

 private:
  std::deque<std::vector<uint8_t>> queue_;
  size_t head_offset_ = 0;  // bytes of queue_.front() already written
  size_t pending_bytes_ = 0;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_IO_UTIL_H_
