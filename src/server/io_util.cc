#include "server/io_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/endian.h"
#include "common/strings.h"
#include "server/framing.h"

namespace embellish::server {

namespace {

// One Pump() call reads at most this much, so a firehosing peer yields the
// loop back after a bounded slice (level-triggered epoll re-arms for the
// rest).
constexpr size_t kPumpBudgetBytes = 1u << 20;

constexpr size_t kReadChunkBytes = 64u << 10;

// Waits for `events` (POLLIN/POLLOUT) on `fd` until the absolute monotonic
// deadline. OK when the fd is ready; Unavailable on timeout.
Status PollFor(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    int wait_ms = -1;
    if (deadline_ms != kNoDeadline) {
      const int64_t remaining = deadline_ms - MonotonicMillis();
      if (remaining <= 0) {
        return Status::Unavailable("socket I/O deadline exceeded");
      }
      wait_ms = static_cast<int>(std::min<int64_t>(remaining, INT32_MAX));
    }
    pollfd pfd{fd, events, 0};
    const int rc = poll(&pfd, 1, wait_ms);
    if (rc > 0) return Status::OK();  // ready (or error/hup: syscall reports)
    if (rc == 0) {
      return Status::Unavailable("socket I/O deadline exceeded");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(
        StringPrintf("poll: %s", std::strerror(errno)));
  }
}

}  // namespace

int64_t MonotonicMillis() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

int64_t DeadlineFromNow(int timeout_ms) {
  if (timeout_ms < 0) return kNoDeadline;
  return MonotonicMillis() + timeout_ms;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(
        StringPrintf("fcntl O_NONBLOCK: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status SetBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return Status::IoError(
        StringPrintf("fcntl ~O_NONBLOCK: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Result<ConnectStart> StartConnect(const std::string& host, uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(
        StringPrintf("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument(
        StringPrintf("not a numeric IPv4 address: %s", host.c_str()));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    return ConnectStart{fd, true};
  }
  if (errno == EINPROGRESS) {
    return ConnectStart{fd, false};
  }
  int err = errno;
  close(fd);
  return Status::Unavailable(StringPrintf(
      "connect %s:%u: %s", host.c_str(), port, std::strerror(err)));
}

Result<int> ConnectWithDeadline(const std::string& host, uint16_t port,
                                int timeout_ms) {
  EMB_ASSIGN_OR_RETURN(ConnectStart start, StartConnect(host, port));
  if (!start.connected) {
    Status ready = PollFor(start.fd, POLLOUT, DeadlineFromNow(timeout_ms));
    if (!ready.ok()) {
      close(start.fd);
      return Status::Unavailable(StringPrintf(
          "connect %s:%u: %s", host.c_str(), port,
          ready.message().c_str()));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(start.fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      close(start.fd);
      return Status::Unavailable(StringPrintf(
          "connect %s:%u: %s", host.c_str(), port,
          std::strerror(so_error != 0 ? so_error : errno)));
    }
  }
  return start.fd;
}

Status WriteAll(int fd, const uint8_t* data, size_t size,
                int64_t deadline_ms) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that died mid-write must produce EPIPE, not
    // SIGPIPE.
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      EMB_RETURN_NOT_OK(PollFor(fd, POLLOUT, deadline_ms));
      continue;
    }
    return Status::Unavailable(StringPrintf(
        "send failed after %zu/%zu bytes: %s", sent, size,
        n < 0 ? std::strerror(errno) : "connection closed"));
  }
  return Status::OK();
}

Status ReadExactly(int fd, uint8_t* data, size_t size, int64_t deadline_ms) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = recv(fd, data + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      EMB_RETURN_NOT_OK(PollFor(fd, POLLIN, deadline_ms));
      continue;
    }
    return Status::Unavailable(StringPrintf(
        "recv failed after %zu/%zu bytes: %s", got, size,
        n < 0 ? std::strerror(errno) : "connection closed"));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFrameFd(int fd, size_t max_frame_bytes,
                                         int64_t deadline_ms) {
  std::vector<uint8_t> bytes(kFrameHeaderBytes);
  EMB_RETURN_NOT_OK(
      ReadExactly(fd, bytes.data(), kFrameHeaderBytes, deadline_ms));
  const size_t payload_size = GetU32(bytes.data() + 16);
  if (payload_size > max_frame_bytes - kFrameHeaderBytes) {
    return Status::Unavailable(StringPrintf(
        "peer declared an oversized %zu-byte frame payload", payload_size));
  }
  bytes.resize(kFrameHeaderBytes + payload_size);
  EMB_RETURN_NOT_OK(ReadExactly(fd, bytes.data() + kFrameHeaderBytes,
                                payload_size, deadline_ms));
  return bytes;
}

// --- FrameReader -------------------------------------------------------------

FrameReader::FrameReader(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

Result<bool> FrameReader::Pump(int fd) {
  uint8_t chunk[kReadChunkBytes];
  size_t pumped = 0;
  while (pumped < kPumpBudgetBytes) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.insert(buf_.end(), chunk, chunk + n);
      pumped += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return false;  // clean EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return Status::Unavailable(
        StringPrintf("recv: %s", std::strerror(errno)));
  }
  return true;  // budget spent; the level-triggered loop will re-arm
}

Result<bool> FrameReader::Next(std::vector<uint8_t>* frame) {
  const size_t available = buffered_bytes();
  if (available < kFrameHeaderBytes) return CompactAndWait();
  const size_t payload_size = GetU32(buf_.data() + pos_ + 16);
  if (payload_size > max_frame_bytes_ - kFrameHeaderBytes) {
    return Status::Corruption(StringPrintf(
        "peer declared an oversized %zu-byte frame payload", payload_size));
  }
  const size_t total = kFrameHeaderBytes + payload_size;
  if (available < total) return CompactAndWait();
  frame->assign(buf_.begin() + pos_, buf_.begin() + pos_ + total);
  pos_ += total;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

Result<bool> FrameReader::CompactAndWait() {
  // Consumed prefix beyond a chunk's worth: slide the partial frame down so
  // a long-lived connection cannot grow the buffer without bound.
  if (pos_ >= kReadChunkBytes) {
    buf_.erase(buf_.begin(), buf_.begin() + pos_);
    pos_ = 0;
  }
  return false;
}

// --- FrameWriter -------------------------------------------------------------

void FrameWriter::Enqueue(std::vector<uint8_t> frame) {
  pending_bytes_ += frame.size();
  queue_.push_back(std::move(frame));
}

Result<bool> FrameWriter::Flush(int fd) {
  while (!queue_.empty()) {
    const std::vector<uint8_t>& head = queue_.front();
    ssize_t n = send(fd, head.data() + head_offset_,
                     head.size() - head_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      head_offset_ += static_cast<size_t>(n);
      pending_bytes_ -= static_cast<size_t>(n);
      if (head_offset_ == head.size()) {
        queue_.pop_front();
        head_offset_ = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    return Status::Unavailable(StringPrintf(
        "send: %s", n < 0 ? std::strerror(errno) : "connection closed"));
  }
  return true;
}

}  // namespace embellish::server
