#include "server/async_frontend.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "server/framing.h"

namespace embellish::server {

Result<std::unique_ptr<AsyncFrontEnd>> AsyncFrontEnd::Create(
    int listen_fd, EventLoop* loop, BatchHandler handler,
    const AsyncFrontEndOptions& options) {
  EMB_RETURN_NOT_OK(SetNonBlocking(listen_fd));
  std::unique_ptr<AsyncFrontEnd> front_end(
      new AsyncFrontEnd(listen_fd, loop, std::move(handler), options));
  EMB_RETURN_NOT_OK(front_end->Start());
  return front_end;
}

AsyncFrontEnd::AsyncFrontEnd(int listen_fd, EventLoop* loop,
                             BatchHandler handler,
                             const AsyncFrontEndOptions& options)
    : loop_(loop),
      handler_(std::move(handler)),
      options_(options),
      listen_fd_(listen_fd) {}

Status AsyncFrontEnd::Start() {
  EMB_RETURN_NOT_OK(
      loop_->Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); }));
  dispatchers_.reserve(options_.dispatch_threads);
  for (size_t i = 0; i < options_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatcherMain(); });
  }
  return Status::OK();
}

AsyncFrontEnd::~AsyncFrontEnd() { Shutdown(); }

void AsyncFrontEnd::Shutdown() {
  bool expected = false;
  if (!shutdown_done_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
  if (loop_->IsRunning() && !loop_->InLoopThread()) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    loop_->RunInLoop([this, &mu, &cv, &done] {
      TeardownInLoop();
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&done] { return done; });
  } else {
    TeardownInLoop();
  }
}

void AsyncFrontEnd::TeardownInLoop() {
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, conn] : conns_) {
    (void)id;
    loop_->Remove(conn.fd);
    close(conn.fd);
    connections_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.clear();
  open_connections_.store(0, std::memory_order_relaxed);
}

void AsyncFrontEnd::OnAcceptable() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error: re-armed
    }
    if (options_.max_connections != 0 &&
        conns_.size() >= options_.max_connections) {
      close(fd);
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const uint64_t conn_id = next_conn_id_++;
    auto [it, inserted] =
        conns_.emplace(conn_id, Conn(options_.max_frame_bytes));
    it->second.fd = fd;
    Status added = loop_->Add(
        fd, EPOLLIN, [this, conn_id](uint32_t ev) { OnConnEvent(conn_id, ev); });
    if (!added.ok()) {
      conns_.erase(conn_id);
      close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AsyncFrontEnd::OnConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 &&
      !conn.reading_paused) {
    Result<bool> open = conn.reader.Pump(conn.fd);
    if (!open.ok()) {
      CloseConn(conn_id);
      return;
    }
    std::vector<uint8_t> frame;
    for (;;) {
      Result<bool> has = conn.reader.Next(&frame);
      if (!has.ok()) {
        // Oversized declared frame: the stream cannot be resynced.
        CloseConn(conn_id);
        return;
      }
      if (!*has) break;
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      DispatchFrame(conn_id, std::move(frame));
      // The handler (sync mode) or a shed may have closed the connection.
      if (conns_.find(conn_id) == conns_.end()) return;
    }
    if (!*open) {
      if (conn.reader.mid_frame()) {
        mid_frame_disconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConn(conn_id);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    auto again = conns_.find(conn_id);
    if (again != conns_.end()) FlushConn(conn_id, again->second);
  }
}

void AsyncFrontEnd::DispatchFrame(uint64_t conn_id,
                                  std::vector<uint8_t> frame) {
  Conn& conn = conns_.at(conn_id);
  const uint64_t ticket = conn.next_ticket++;
  if (options_.dispatch_threads == 0) {
    // Zero-worker synchronous fallback: handle on the loop thread. Correct
    // everywhere, and on a 1-core box there is no one else to hand it to.
    std::vector<std::vector<uint8_t>> responses =
        handler_(std::vector<std::vector<uint8_t>>{std::move(frame)});
    Deliver(conn_id, ticket,
            responses.empty() ? std::vector<uint8_t>{} : std::move(responses[0]));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < options_.max_pending && !stopping_) {
      queue_.push_back(Work{conn_id, ticket, std::move(frame)});
      queue_cv_.notify_one();
      return;
    }
  }
  // Queue full: shed with a typed kBusy error the client can retry, through
  // the same ticketed delivery so response order still holds.
  shed_.fetch_add(1, std::memory_order_relaxed);
  Deliver(conn_id, ticket,
          EncodeFrame(FrameKind::kError, 0,
                      EncodeError(Status::Busy(
                          "server dispatch queue full; request shed"))));
}

void AsyncFrontEnd::DispatcherMain() {
  for (;;) {
    std::vector<Work> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, drained
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    std::vector<std::vector<uint8_t>> requests;
    requests.reserve(batch.size());
    for (Work& w : batch) requests.push_back(std::move(w.frame));
    std::vector<std::vector<uint8_t>> responses = handler_(requests);
    responses.resize(batch.size());  // a short handler answer closes as empty
    auto shared_batch = std::make_shared<std::vector<Work>>(std::move(batch));
    auto shared_responses =
        std::make_shared<std::vector<std::vector<uint8_t>>>(
            std::move(responses));
    loop_->RunInLoop([this, shared_batch, shared_responses] {
      for (size_t i = 0; i < shared_batch->size(); ++i) {
        Deliver((*shared_batch)[i].conn_id, (*shared_batch)[i].ticket,
                std::move((*shared_responses)[i]));
      }
    });
  }
}

void AsyncFrontEnd::Deliver(uint64_t conn_id, uint64_t ticket,
                            std::vector<uint8_t> response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died before its answer
  Conn& conn = it->second;
  conn.ready.emplace(ticket, std::move(response));
  // Release the in-order prefix: concurrent dispatcher batches may finish
  // out of order, but one connection's responses go out in request order.
  while (!conn.ready.empty() &&
         conn.ready.begin()->first == conn.next_to_send) {
    std::vector<uint8_t> next = std::move(conn.ready.begin()->second);
    conn.ready.erase(conn.ready.begin());
    ++conn.next_to_send;
    if (next.empty()) {
      // An empty response (handler under-answered): drop the connection
      // rather than desync its response ordering.
      CloseConn(conn_id);
      return;
    }
    responses_out_.fetch_add(1, std::memory_order_relaxed);
    conn.writer.Enqueue(std::move(next));
  }
  FlushConn(conn_id, conn);
}

void AsyncFrontEnd::FlushConn(uint64_t conn_id, Conn& conn) {
  Result<bool> drained = conn.writer.Flush(conn.fd);
  if (!drained.ok()) {
    CloseConn(conn_id);
    return;
  }
  UpdateReadInterest(conn);
}

void AsyncFrontEnd::UpdateReadInterest(Conn& conn) {
  // Backpressure: above the high-water mark the connection stops being
  // read (its kernel receive buffer then pushes back on the client);
  // reading resumes once the outbox drains below half.
  if (!conn.reading_paused &&
      conn.writer.pending_bytes() > options_.outbox_high_water) {
    conn.reading_paused = true;
  } else if (conn.reading_paused &&
             conn.writer.pending_bytes() <= options_.outbox_high_water / 2) {
    conn.reading_paused = false;
  }
  const uint32_t events =
      (conn.reading_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
      (conn.writer.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  (void)loop_->Modify(conn.fd, events);
}

void AsyncFrontEnd::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_->Remove(it->second.fd);
  close(it->second.fd);
  conns_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

AsyncFrontEndStats AsyncFrontEnd::stats() const {
  AsyncFrontEndStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  out.connections_refused =
      connections_refused_.load(std::memory_order_relaxed);
  out.frames_in = frames_in_.load(std::memory_order_relaxed);
  out.responses_out = responses_out_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.mid_frame_disconnects =
      mid_frame_disconnects_.load(std::memory_order_relaxed);
  out.open_connections = open_connections_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace embellish::server
