#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "server/io_util.h"

namespace embellish::server {

namespace {

constexpr int kMaxEpollEvents = 64;

Status EpollCtl(int epoll_fd, int op, int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd, op, fd, &ev) != 0) {
    return Status::IoError(
        StringPrintf("epoll_ctl(fd %d): %s", fd, std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int epoll_fd = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::IoError(
        StringPrintf("epoll_create1: %s", std::strerror(errno)));
  }
  int wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    int err = errno;
    close(epoll_fd);
    return Status::IoError(StringPrintf("eventfd: %s", std::strerror(err)));
  }
  int timer_fd = timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  if (timer_fd < 0) {
    int err = errno;
    close(wake_fd);
    close(epoll_fd);
    return Status::IoError(
        StringPrintf("timerfd_create: %s", std::strerror(err)));
  }
  std::unique_ptr<EventLoop> loop(new EventLoop(epoll_fd, wake_fd, timer_fd));
  EMB_RETURN_NOT_OK(EpollCtl(epoll_fd, EPOLL_CTL_ADD, wake_fd, EPOLLIN));
  EMB_RETURN_NOT_OK(EpollCtl(epoll_fd, EPOLL_CTL_ADD, timer_fd, EPOLLIN));
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int wake_fd, int timer_fd)
    : epoll_fd_(epoll_fd), wake_fd_(wake_fd), timer_fd_(timer_fd) {}

EventLoop::~EventLoop() {
  Stop();
  close(timer_fd_);
  close(wake_fd_);
  close(epoll_fd_);
}

Status EventLoop::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return Status::OK();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    uint64_t one = 1;
    (void)!write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
}

bool EventLoop::InLoopThread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  if (InLoopThread()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
}

uint64_t EventLoop::ScheduleAfter(int64_t delay_ms, std::function<void()> fn) {
  const int64_t deadline = MonotonicMillis() + (delay_ms < 0 ? 0 : delay_ms);
  std::lock_guard<std::mutex> lock(timer_mu_);
  const uint64_t id = next_timer_id_++;
  timer_fns_.emplace(id, std::move(fn));
  timer_heap_.push(TimerEntry{deadline, id});
  RearmTimerLocked();
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  timer_fns_.erase(id);  // the heap entry is skipped lazily when popped
}

void EventLoop::RearmTimerLocked() {
  // Arm the timerfd for the earliest live deadline. A relative expiry of 0
  // is "disarm", so past-due deadlines arm the 1ns minimum and fire on the
  // next tick.
  while (!timer_heap_.empty() &&
         timer_fns_.find(timer_heap_.top().id) == timer_fns_.end()) {
    timer_heap_.pop();  // cancelled entry: drop before computing the expiry
  }
  itimerspec spec{};
  if (!timer_heap_.empty()) {
    const int64_t remaining = timer_heap_.top().deadline_ms - MonotonicMillis();
    if (remaining > 0) {
      spec.it_value.tv_sec = remaining / 1000;
      spec.it_value.tv_nsec = (remaining % 1000) * 1000000;
    } else {
      spec.it_value.tv_nsec = 1;
    }
  }
  (void)timerfd_settime(timer_fd_, 0, &spec, nullptr);
}

void EventLoop::FireDueTimers() {
  uint64_t expirations = 0;
  (void)!read(timer_fd_, &expirations, sizeof(expirations));
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      const int64_t now = MonotonicMillis();
      while (!timer_heap_.empty()) {
        const TimerEntry top = timer_heap_.top();
        auto it = timer_fns_.find(top.id);
        if (it == timer_fns_.end()) {
          timer_heap_.pop();  // cancelled
          continue;
        }
        if (top.deadline_ms > now) break;
        timer_heap_.pop();
        fn = std::move(it->second);
        timer_fns_.erase(it);
        break;
      }
      if (fn == nullptr) {
        RearmTimerLocked();
        return;
      }
    }
    fn();  // outside timer_mu_: the callback may schedule or cancel timers
  }
}

void EventLoop::DrainWake() {
  uint64_t count = 0;
  (void)!read(wake_fd_, &count, sizeof(count));
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  epoll_event events[kMaxEpollEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // the epoll fd itself failed; nothing to serve any more
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWake();
        continue;
      }
      if (fd == timer_fd_) {
        FireDueTimers();
        continue;
      }
      std::shared_ptr<IoHandler> handler;
      {
        std::lock_guard<std::mutex> lock(handlers_mu_);
        auto it = handlers_.find(fd);
        if (it != handlers_.end()) handler = it->second;
      }
      // A handler earlier in this batch may have removed the fd; the
      // lookup-per-event is what keeps that safe.
      if (handler != nullptr) (*handler)(events[i].events);
    }
  }
}

Status EventLoop::Add(int fd, uint32_t events, IoHandler handler) {
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  }
  Status added = EpollCtl(epoll_fd_, EPOLL_CTL_ADD, fd, events);
  if (!added.ok()) {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.erase(fd);
  }
  return added;
}

Status EventLoop::Modify(int fd, uint32_t events) {
  return EpollCtl(epoll_fd_, EPOLL_CTL_MOD, fd, events);
}

void EventLoop::Remove(int fd) {
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_.erase(fd);
}

}  // namespace embellish::server
