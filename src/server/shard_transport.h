// Transports carrying framed requests between a ShardCoordinator and its
// shard servers, plus the shard-side endpoint that unwraps them.
//
// A ShardTransport is a blocking request/response channel for
// server/framing.h frames: the coordinator writes one kShardRequest frame
// and reads exactly one response frame. Three implementations:
//
//   InProcessTransport  wraps a ShardEndpoint directly — zero copies beyond
//                       the frames themselves; used by tests, benches and
//                       single-box deployments, and the configuration whose
//                       responses the bit-identity suite pins against the
//                       in-process sharded server.
//   TcpTransport        a loopback/LAN socket with send/recv timeouts, so a
//                       dead shard surfaces as a typed Unavailable status
//                       instead of a hang. Reconnects lazily after failures.
//   FaultyTransport     a decorator injecting deterministic transport
//                       faults (drop / truncate / bit-flip / reorder /
//                       delay) for the coordinator fault-injection suite.
//
// The ShardEndpoint is the server side of the shard protocol: it validates
// the kShardRequest envelope (shard id, fencing epoch), hands the inner
// frame to its EmbellishServer — typically one serving a single slice (see
// EmbellishServerOptions::shard_slice) — and wraps the response in a
// kShardResponse envelope echoing shard id / epoch / seq so the coordinator
// can detect misrouted, stale or reordered responses. An empty inner frame
// is a ping answered with the shard's topology (kHelloOk).

#ifndef EMBELLISH_SERVER_SHARD_TRANSPORT_H_
#define EMBELLISH_SERVER_SHARD_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "server/embellish_server.h"
#include "server/framing.h"

namespace embellish::server {

/// \brief Largest frame a transport will read off a socket. A hostile or
///        corrupt length field must bound the allocation it can force.
inline constexpr size_t kMaxTransportFrameBytes = (64u << 20) + kFrameHeaderBytes;

/// \brief A request/response channel for framed bytes.
class ShardTransport {
 public:
  /// \brief Delivers one round trip's outcome. May run on any thread (for a
  ///        MultiplexedTransport: the event-loop thread) and must not block.
  using RoundTripCompletion =
      std::function<void(Result<std::vector<uint8_t>>)>;

  virtual ~ShardTransport() = default;

  /// \brief Sends one frame and blocks for the response frame. Any
  ///        transport-level failure (peer dead, timeout, short read) is a
  ///        non-OK status — implementations must not hang forever and must
  ///        not crash, whatever the peer does. Implementations need not be
  ///        thread-safe unless SupportsAsyncSubmit() is true; the
  ///        coordinator serializes calls per non-multiplexed transport.
  virtual Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) = 0;

  /// \brief True when SubmitRoundTrip is genuinely non-blocking AND
  ///        concurrent RoundTrip/SubmitRoundTrip calls are thread-safe
  ///        (in-flight requests interleave on the channel instead of
  ///        queueing). The coordinator then switches that slice's fan-out
  ///        to submit-and-await: no executor worker parks on transport I/O.
  virtual bool SupportsAsyncSubmit() const { return false; }

  /// \brief Starts one round trip and delivers the outcome to `done`
  ///        exactly once. The base implementation degrades to the blocking
  ///        RoundTrip inline — callers must already hold whatever
  ///        serialization the transport needs in that case.
  virtual void SubmitRoundTrip(const std::vector<uint8_t>& request,
                               RoundTripCompletion done) {
    done(RoundTrip(request));
  }
};

/// \brief Server side of the shard protocol: envelope validation + fencing
///        around an EmbellishServer. Thread-safe.
class ShardEndpoint {
 public:
  /// \brief `server` must outlive the endpoint and is typically a slice
  ///        server (shard_slice == shard_id) over the shared index.
  ShardEndpoint(EmbellishServer* server, size_t shard_id);

  /// \brief Handles one kShardRequest frame; always returns a response
  ///        frame (kShardResponse on success, kError otherwise).
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& request);

  size_t shard_id() const { return shard_id_; }

 private:
  EmbellishServer* server_;  // not owned
  const size_t shard_id_;

  // Highest coordinator epoch seen; envelopes from lower epochs are fenced
  // out so a superseded coordinator cannot keep driving the shard.
  std::mutex epoch_mu_;
  uint64_t last_epoch_ = 0;
};

/// \brief In-process transport: the "wire" is a function call.
class InProcessTransport : public ShardTransport {
 public:
  /// \brief `endpoint` must outlive the transport.
  explicit InProcessTransport(ShardEndpoint* endpoint) : endpoint_(endpoint) {}

  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override {
    return endpoint_->HandleFrame(request);
  }

 private:
  ShardEndpoint* endpoint_;  // not owned
};

// --- TCP --------------------------------------------------------------------

/// \brief Socket knobs. Timeouts are what turn a dead shard into a typed
///        Unavailable instead of a wedged coordinator. All deadlines are
///        absolute CLOCK_MONOTONIC deadlines (see server/io_util.h): a
///        wall-clock step cannot spuriously expire an in-flight round trip,
///        and a peer trickling one byte per timeout window cannot extend a
///        round trip unboundedly the way the old per-syscall SO_RCVTIMEO
///        timeouts allowed.
struct TcpTransportOptions {
  int connect_timeout_ms = 5000;
  /// Bounds the WHOLE request write, and separately the WHOLE response
  /// read (the read deadline starts once the request is fully written, so
  /// legitimate shard compute time is not charged against the send).
  int io_timeout_ms = 5000;
};

/// \brief Blocking TCP client for one shard. After any failure the
///        connection is torn down and the next RoundTrip reconnects, so a
///        restarted shard process heals without coordinator restarts.
///        A round trip that fails on an already-pooled connection (the peer
///        restarted between requests, leaving a dead socket in the pool)
///        transparently reconnects and resends once before surfacing
///        Unavailable — shard requests are idempotent and seq-fenced, so a
///        duplicate send is harmless. A failure on a connection established
///        by this very call is surfaced immediately (the peer is down, not
///        stale).
class TcpTransport : public ShardTransport {
 public:
  /// \brief Connects to `host:port` (numeric IPv4, e.g. "127.0.0.1").
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port,
      const TcpTransportOptions& options = {});

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override;

 private:
  TcpTransport(std::string host, uint16_t port, TcpTransportOptions options,
               int fd);

  Status EnsureConnected();
  void Disconnect();

  // One send + one response read on the current connection.
  Result<std::vector<uint8_t>> TrySend(const std::vector<uint8_t>& request);

  const std::string host_;
  const uint16_t port_;
  const TcpTransportOptions options_;
  int fd_ = -1;
};

/// \brief Binds a listening socket on 127.0.0.1 (port 0 = kernel-assigned;
///        `*port` returns the bound port). Returns the listen fd.
Result<int> ListenOnLoopback(uint16_t* port);

/// \brief Accept loop serving `endpoint` on `listen_fd`: one connection at
///        a time (a coordinator holds one connection per shard), one
///        request frame -> one response frame until the peer disconnects.
///        Returns when accept fails (e.g. the fd was closed or shut down) —
///        the shutdown path for tests and shard processes.
Status ServeShardConnections(int listen_fd, ShardEndpoint* endpoint);

// --- Fault injection --------------------------------------------------------

/// \brief What a FaultyTransport does to one round trip.
enum class TransportFault : uint8_t {
  kNone,      ///< deliver faithfully
  kDrop,      ///< deliver the request, lose the response (reads as timeout)
  kTruncate,  ///< chop the response at a seeded offset
  kBitFlip,   ///< flip one seeded bit of the response
  kReorder,   ///< deliver the previous round trip's response instead
  kDelay,     ///< deliver intact after a bounded sleep (not an error)
};

/// \brief Per-kind injection counters, so fault tests can assert each fault
///        class actually fired instead of trusting the seed.
struct FaultyTransportStats {
  size_t calls = 0;        ///< round trips attempted through the decorator
  size_t drops = 0;
  size_t truncations = 0;
  size_t bit_flips = 0;
  size_t reorders = 0;
  size_t delays = 0;

  /// \brief All injected faults (kNone excluded; delays count — they are
  ///        injected even though they are not errors).
  size_t total() const {
    return drops + truncations + bit_flips + reorders + delays;
  }
};

/// \brief Deterministic fault schedule.
struct FaultyTransportOptions {
  /// Explicit per-call schedule, consumed one entry per RoundTrip; calls
  /// past the end behave as kNone (or cycle when `cycle` is set). When the
  /// schedule is empty, each call draws a fault with probability
  /// `fault_rate` from the seeded generator — the fuzz mode.
  std::vector<TransportFault> schedule;
  bool cycle = false;
  uint64_t seed = 1;       ///< seeds fault choice, truncation points, bits
  double fault_rate = 0.0;
  uint32_t delay_ms = 2;
};

/// \brief Decorator wrapping any transport with seeded, reproducible
///        transport faults. Thread-safe. The blocking path holds a single
///        mutex across the inner round trip (serializing, which matches the
///        coordinator's per-transport locking for non-multiplexed inners);
///        the async path holds it only around the fault draw and the
///        response mutation, so concurrent in-flight submits through a
///        MultiplexedTransport stay concurrent — the decorator composes
///        with the multiplexer instead of flattening it.
class FaultyTransport : public ShardTransport {
 public:
  /// \brief `inner` must outlive the decorator.
  FaultyTransport(ShardTransport* inner, FaultyTransportOptions options);

  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override;

  /// \brief Async submission is exposed iff the inner transport exposes it;
  ///        the same fault schedule applies to submitted trips (a kDelay
  ///        completion is deferred off-thread so it never stalls the inner
  ///        transport's event loop).
  bool SupportsAsyncSubmit() const override {
    return inner_->SupportsAsyncSubmit();
  }
  void SubmitRoundTrip(const std::vector<uint8_t>& request,
                       RoundTripCompletion done) override;

  /// \brief Faults actually injected so far (kNone entries excluded).
  size_t faults_injected() const;

  /// \brief Per-fault-kind injection counters.
  FaultyTransportStats stats() const;

 private:
  TransportFault NextFaultLocked();

  // Applies `fault`'s response-side damage (truncate / bit-flip / reorder
  // swap / drop) to one inner outcome; kNone and kDelay pass through.
  // Caller holds mu_ (for the rng and the reorder hold slot).
  Result<std::vector<uint8_t>> MutateResponseLocked(
      TransportFault fault, Result<std::vector<uint8_t>> response);

  ShardTransport* inner_;  // not owned
  const FaultyTransportOptions options_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultyTransportStats stats_;  // guarded by mu_
  std::vector<uint8_t> held_;  // kReorder: response awaiting late delivery
  bool has_held_ = false;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_SHARD_TRANSPORT_H_
