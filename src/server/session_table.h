// Bounded, idle-expiring registry of session public keys — the one session
// table implementation behind both tiers: EmbellishServer (slice or
// monolithic) and ShardCoordinator.
//
// Semantics:
//   - Register() overwrites an existing id (re-hello), bumping the entry's
//     registration epoch so response caches can refuse to replay bytes
//     encrypted under a superseded key, and always admits an existing id.
//     A fresh id is admitted while the table is under max_sessions; when
//     full, an idle sweep runs first so a table of dead registrations can
//     never lock genuine new sessions out permanently.
//   - Touch() advances the entry's idle clock; callers invoke it for every
//     decodable frame naming the session, whatever its kind — a session
//     streaming only PIR or top-k traffic is just as alive as one
//     streaming PR queries.
//   - The idle clock is a caller-supplied logical time (handled frames;
//     servers have no wall clock of their own). Entries idle for more than
//     idle_frames are erased by amortized sweeps (every kSweepStride
//     registrations, and always before a fresh id is refused for
//     capacity), releasing superseded and abandoned Benaloh keys.
//
// Thread safety: a shared_mutex; Find/Touch take the shared side (Touch
// stores through an atomic so concurrent touches may race benignly — any
// of the racing timestamps keeps the session alive), Register the
// exclusive side.

#ifndef EMBELLISH_SERVER_SESSION_TABLE_H_
#define EMBELLISH_SERVER_SESSION_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/benaloh.h"

namespace embellish::server {

/// \brief Session-key registry with capacity and idle-expiry bounds.
class SessionTable {
 public:
  /// \brief One registered session. `pk == nullptr` means "absent".
  struct Entry {
    std::shared_ptr<const crypto::BenalohPublicKey> pk;
    uint64_t epoch = 0;
    std::shared_ptr<std::atomic<uint64_t>> last_seen;
  };

  /// \brief Registrations between amortized idle sweeps.
  static constexpr uint64_t kSweepStride = 256;

  /// \brief `idle_frames == 0` disables expiry.
  SessionTable(size_t max_sessions, uint64_t idle_frames)
      : max_sessions_(max_sessions), idle_frames_(idle_frames) {}

  /// \brief Copy of the entry for `session_id` (pk null when absent).
  Entry Find(uint64_t session_id) const;

  /// \brief Bumps the session's idle clock to `now` if registered.
  void Touch(uint64_t session_id, uint64_t now) const;

  /// \brief (Re-)registers the session at logical time `now`. Returns
  ///        false when a fresh id is refused because the table is full of
  ///        live sessions even after a sweep.
  bool Register(uint64_t session_id,
                std::shared_ptr<const crypto::BenalohPublicKey> pk,
                uint64_t now);

  size_t size() const;

  /// \brief A consistent copy of every live registration's (id, key) —
  ///        what a coordinator re-pushes to its slice servers at an epoch
  ///        cutover. Keys are shared, not copied.
  std::vector<std::pair<uint64_t,
                        std::shared_ptr<const crypto::BenalohPublicKey>>>
  Snapshot() const;

  /// \brief Total idle sessions swept so far (keys released).
  uint64_t expired_total() const {
    return expired_.load(std::memory_order_relaxed);
  }

 private:
  void SweepLocked(uint64_t now);  // requires mu_ held exclusively

  const size_t max_sessions_;
  const uint64_t idle_frames_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, Entry> sessions_;
  uint64_t next_epoch_ = 1;           // guarded by mu_
  uint64_t since_sweep_ = 0;          // guarded by mu_
  std::atomic<uint64_t> expired_{0};
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_SESSION_TABLE_H_
