// A minimal epoll reactor: the I/O frontier of the async serving stack.
//
// One EventLoop owns one thread blocked in epoll_wait and three kinds of
// event source:
//
//   sockets   level-triggered EPOLLIN/EPOLLOUT interest registered with
//             Add/Modify/Remove; handlers run on the loop thread;
//   eventfd   cross-thread wakeups: RunInLoop(fn) enqueues fn from any
//             thread and pokes the eventfd, so completions posted by
//             executor workers (or transport submitters) land on the loop
//             thread without the loop ever polling;
//   timerfd   deadlines: ScheduleAfter(ms, fn) arms a CLOCK_MONOTONIC
//             timerfd against a min-heap of pending timers — wall-clock
//             steps cannot fire (or stall) a timeout.
//
// The contract every user leans on: handlers, posted functions and timer
// callbacks all run on the loop thread, one at a time — connection and
// correlation state confined to the loop needs no locks. Nothing run on the
// loop thread may block: blocking work is handed to dispatcher threads /
// the executor, and its results come back via RunInLoop.
//
// The loop is edge-free (level-triggered) on purpose: a handler that drains
// only part of a socket's readable bytes is re-armed automatically, which is
// what lets FrameReader::Pump budget its reads for slow-client fairness
// without risking a stall.

#ifndef EMBELLISH_SERVER_EVENT_LOOP_H_
#define EMBELLISH_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace embellish::server {

/// \brief One-thread epoll reactor. Create() then Start(); Stop() joins.
class EventLoop {
 public:
  /// \brief Socket event handler; `events` carries the EPOLLIN / EPOLLOUT /
  ///        EPOLLERR / EPOLLHUP bits that fired. Runs on the loop thread.
  using IoHandler = std::function<void(uint32_t events)>;

  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Spawns the loop thread. Idempotent once started.
  Status Start();

  /// \brief Stops and joins the loop thread. Registered fds are NOT closed
  ///        (their owners close them); pending timers and posted functions
  ///        are dropped. Idempotent.
  void Stop();

  /// \brief True on the loop thread — the thread-confinement assert hook.
  bool InLoopThread() const;

  /// \brief True between Start() and Stop(). Users that tear down via
  ///        RunInLoop (e.g. MultiplexedTransport) check this to fall back
  ///        to inline teardown when the loop is already gone.
  bool IsRunning() const { return running_.load(std::memory_order_acquire); }

  /// \brief Runs `fn` on the loop thread: immediately (inline) when called
  ///        from the loop thread, otherwise enqueued and woken via eventfd.
  void RunInLoop(std::function<void()> fn);

  /// \brief Runs `fn` on the loop thread after `delay_ms` (CLOCK_MONOTONIC).
  ///        Returns a timer id for CancelTimer. Thread-safe.
  uint64_t ScheduleAfter(int64_t delay_ms, std::function<void()> fn);

  /// \brief Best-effort cancel: a timer that already fired (or is firing)
  ///        is gone. Thread-safe.
  void CancelTimer(uint64_t id);

  /// \brief Registers `fd` for `events` (EPOLLIN and/or EPOLLOUT,
  ///        level-triggered). The handler runs on the loop thread until
  ///        Remove(fd). Thread-safe.
  Status Add(int fd, uint32_t events, IoHandler handler);

  /// \brief Changes the interest set of a registered fd. Thread-safe.
  Status Modify(int fd, uint32_t events);

  /// \brief Deregisters `fd`; must precede close(fd). Thread-safe. After
  ///        Remove returns (called on the loop thread: immediately), the
  ///        handler will not be invoked again.
  void Remove(int fd);

 private:
  EventLoop(int epoll_fd, int wake_fd, int timer_fd);

  void Run();
  void DrainWake();
  void FireDueTimers();
  void RearmTimerLocked();  // timer_mu_ held

  const int epoll_fd_;
  const int wake_fd_;   // eventfd
  const int timer_fd_;  // CLOCK_MONOTONIC timerfd

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};

  // fd -> handler. shared_ptr so a handler fired from an epoll batch stays
  // valid even if another event in the same batch removed the fd.
  std::mutex handlers_mu_;
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;

  // Cross-thread posted functions.
  std::mutex pending_mu_;
  std::vector<std::function<void()>> pending_;

  // Timer heap: (absolute monotonic ms, id); fns live in timer_fns_ so
  // CancelTimer is an erase, and a popped entry whose id is gone is skipped.
  struct TimerEntry {
    int64_t deadline_ms;
    uint64_t id;
    bool operator>(const TimerEntry& other) const {
      return deadline_ms != other.deadline_ms
                 ? deadline_ms > other.deadline_ms
                 : id > other.id;
    }
  };
  std::mutex timer_mu_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timer_heap_;
  std::map<uint64_t, std::function<void()>> timer_fns_;
  uint64_t next_timer_id_ = 1;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_EVENT_LOOP_H_
