#include "server/multiplexed_transport.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <mutex>

#include "common/strings.h"
#include "server/framing.h"

namespace embellish::server {

Result<std::unique_ptr<MultiplexedTransport>> MultiplexedTransport::Connect(
    const std::string& host, uint16_t port, EventLoop* loop,
    const MultiplexedTransportOptions& options) {
  EMB_ASSIGN_OR_RETURN(
      int fd, ConnectWithDeadline(host, port, options.connect_timeout_ms));
  std::unique_ptr<MultiplexedTransport> transport(new MultiplexedTransport(
      loop, host, port, /*can_reconnect=*/true, options));
  Status registered = transport->Register(fd, ConnState::kConnected);
  if (!registered.ok()) {
    close(fd);
    return registered;
  }
  return transport;
}

Result<std::unique_ptr<MultiplexedTransport>> MultiplexedTransport::Adopt(
    int fd, EventLoop* loop, const MultiplexedTransportOptions& options) {
  EMB_RETURN_NOT_OK(SetNonBlocking(fd));
  std::unique_ptr<MultiplexedTransport> transport(new MultiplexedTransport(
      loop, /*host=*/"", /*port=*/0, /*can_reconnect=*/false, options));
  Status registered = transport->Register(fd, ConnState::kConnected);
  if (!registered.ok()) return registered;  // caller keeps ownership of fd
  return transport;
}

MultiplexedTransport::MultiplexedTransport(
    EventLoop* loop, std::string host, uint16_t port, bool can_reconnect,
    const MultiplexedTransportOptions& options)
    : loop_(loop),
      host_(std::move(host)),
      port_(port),
      can_reconnect_(can_reconnect),
      options_(options) {}

Status MultiplexedTransport::Register(int fd, ConnState state) {
  fd_ = fd;
  state_ = state;
  interest_ = state == ConnState::kConnecting ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  return loop_->Add(fd, interest_, [this](uint32_t ev) { OnIoEvent(ev); });
}

MultiplexedTransport::~MultiplexedTransport() {
  if (loop_->IsRunning() && !loop_->InLoopThread()) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    loop_->RunInLoop([this, &mu, &cv, &done] {
      TeardownInLoop();
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&done] { return done; });
  } else {
    // Loop already stopped (or we are on it): nothing else can touch the
    // loop-confined state concurrently.
    TeardownInLoop();
  }
}

void MultiplexedTransport::TeardownInLoop() {
  ResetConnection(Status::Unavailable("transport shutting down"));
  resets_.fetch_sub(1, std::memory_order_relaxed);  // shutdown is not a fault
}

Result<std::vector<uint8_t>> MultiplexedTransport::RoundTrip(
    const std::vector<uint8_t>& request) {
  if (loop_->InLoopThread()) {
    return Status::FailedPrecondition(
        "blocking RoundTrip on the event-loop thread would deadlock");
  }
  struct Wait {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<std::vector<uint8_t>> result = std::vector<uint8_t>{};
  };
  auto wait = std::make_shared<Wait>();
  SubmitRoundTrip(request, [wait](Result<std::vector<uint8_t>> outcome) {
    std::lock_guard<std::mutex> lock(wait->mu);
    wait->result = std::move(outcome);
    wait->done = true;
    wait->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(wait->mu);
  wait->cv.wait(lock, [&wait] { return wait->done; });
  return std::move(wait->result);
}

void MultiplexedTransport::SubmitRoundTrip(const std::vector<uint8_t>& request,
                                           RoundTripCompletion done) {
  // Parse the correlation key on the submitter's thread: a malformed
  // request is the submitter's bug and fails inline, before any I/O.
  Result<Frame> frame = DecodeFrame(request);
  if (!frame.ok()) {
    done(frame.status());
    return;
  }
  if (frame->kind != FrameKind::kShardRequest) {
    done(Status::InvalidArgument(
        "multiplexed transport carries kShardRequest frames only"));
    return;
  }
  Result<ShardEnvelope> envelope = DecodeShardEnvelope(frame->payload);
  if (!envelope.ok()) {
    done(envelope.status());
    return;
  }
  Key key{envelope->epoch, envelope->seq};
  requests_.fetch_add(1, std::memory_order_relaxed);
  loop_->RunInLoop([this, key, request, done = std::move(done)]() mutable {
    SubmitInLoop(key, std::move(request), std::move(done));
  });
}

void MultiplexedTransport::SubmitInLoop(Key key, std::vector<uint8_t> request,
                                        RoundTripCompletion done) {
  if (pending_.count(key) != 0) {
    done(Status::InvalidArgument(StringPrintf(
        "duplicate in-flight correlation key (epoch %llu, seq %llu)",
        static_cast<unsigned long long>(key.first),
        static_cast<unsigned long long>(key.second))));
    return;
  }
  if (state_ == ConnState::kDisconnected) {
    Status started = StartConnectInLoop();
    if (!started.ok()) {
      done(started);
      return;
    }
  }
  const uint64_t timer_id = loop_->ScheduleAfter(
      options_.io_timeout_ms, [this, key] { OnTimeout(key); });
  pending_.emplace(key, Pending{std::move(done), timer_id});
  writer_.Enqueue(std::move(request));
  if (state_ == ConnState::kConnected) {
    OnWritable();
  }
  // kConnecting: frames sit queued until FinishConnect flushes them.
}

Status MultiplexedTransport::StartConnectInLoop() {
  if (!can_reconnect_) {
    return Status::Unavailable(
        "adopted connection is gone and has no reconnect endpoint");
  }
  EMB_ASSIGN_OR_RETURN(ConnectStart start, StartConnect(host_, port_));
  Status registered = Register(
      start.fd, start.connected ? ConnState::kConnected : ConnState::kConnecting);
  if (!registered.ok()) {
    close(start.fd);
    fd_ = -1;
    state_ = ConnState::kDisconnected;
    return registered;
  }
  if (state_ == ConnState::kConnecting) {
    connect_timer_id_ =
        loop_->ScheduleAfter(options_.connect_timeout_ms, [this] {
          if (state_ == ConnState::kConnecting) {
            ResetConnection(Status::Unavailable(StringPrintf(
                "connect %s:%u: deadline exceeded", host_.c_str(), port_)));
          }
        });
  }
  return Status::OK();
}

void MultiplexedTransport::FinishConnect() {
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    ResetConnection(Status::Unavailable(StringPrintf(
        "connect %s:%u: %s", host_.c_str(), port_,
        std::strerror(so_error != 0 ? so_error : errno))));
    return;
  }
  state_ = ConnState::kConnected;
  if (connect_timer_id_ != 0) {
    loop_->CancelTimer(connect_timer_id_);
    connect_timer_id_ = 0;
  }
  OnWritable();
}

void MultiplexedTransport::OnIoEvent(uint32_t events) {
  if (state_ == ConnState::kConnecting) {
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      ResetConnection(Status::Unavailable(StringPrintf(
          "connect %s:%u: connection refused", host_.c_str(), port_)));
      return;
    }
    if ((events & EPOLLOUT) != 0) FinishConnect();
    return;
  }
  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
    OnReadable();
  }
  if (state_ == ConnState::kConnected && (events & EPOLLOUT) != 0) {
    OnWritable();
  }
}

void MultiplexedTransport::OnReadable() {
  Result<bool> open = reader_.Pump(fd_);
  if (!open.ok()) {
    ResetConnection(open.status());
    return;
  }
  std::vector<uint8_t> frame;
  for (;;) {
    Result<bool> has = reader_.Next(&frame);
    if (!has.ok()) {
      ResetConnection(has.status());
      return;
    }
    if (!*has) break;
    HandleResponseFrame(std::move(frame));
    if (state_ != ConnState::kConnected) return;  // poisoned mid-batch
  }
  if (!*open) {
    ResetConnection(Status::Unavailable("shard closed the connection"));
  }
}

void MultiplexedTransport::OnWritable() {
  Result<bool> drained = writer_.Flush(fd_);
  if (!drained.ok()) {
    ResetConnection(drained.status());
    return;
  }
  UpdateInterest();
}

void MultiplexedTransport::UpdateInterest() {
  const uint32_t wanted =
      EPOLLIN | (writer_.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  if (wanted != interest_) {
    interest_ = wanted;
    (void)loop_->Modify(fd_, wanted);
  }
}

void MultiplexedTransport::HandleResponseFrame(std::vector<uint8_t> frame) {
  Result<Frame> decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    // The stream is no longer frame-aligned; nothing after this byte can be
    // trusted to belong to anyone.
    ResetConnection(decoded.status());
    return;
  }
  if (decoded->kind == FrameKind::kShardResponse) {
    Result<ShardEnvelope> envelope = DecodeShardEnvelope(decoded->payload);
    if (!envelope.ok()) {
      ResetConnection(envelope.status());
      return;
    }
    auto it = pending_.find(Key{envelope->epoch, envelope->seq});
    if (it == pending_.end()) {
      // Duplicate, stale replay, or fabricated: never deliverable to any
      // submitter, and in particular never to the WRONG one.
      orphan_responses_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Pending pending = std::move(it->second);
    pending_.erase(it);
    loop_->CancelTimer(pending.timer_id);
    responses_.fetch_add(1, std::memory_order_relaxed);
    pending.done(std::move(frame));
    return;
  }
  // An outer kError (or any non-response kind) carries no envelope, so it
  // cannot name the request it answers — on a pipelined connection that is
  // a stream desync, and every in-flight trip must fail typed rather than
  // risk a wrong-request merge.
  Status cause = Status::Unavailable("shard sent an uncorrelatable frame");
  if (decoded->kind == FrameKind::kError) {
    Status transported = Status::OK();
    if (DecodeError(decoded->payload, &transported).ok()) {
      cause = transported;
    }
  }
  ResetConnection(cause);
}

void MultiplexedTransport::OnTimeout(Key key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // response won the race
  Pending pending = std::move(it->second);
  pending_.erase(it);
  timeouts_.fetch_add(1, std::memory_order_relaxed);
  // The connection stays up: one slow request must not fail its siblings.
  // If the response arrives later it is dropped as an orphan.
  pending.done(Status::Unavailable(StringPrintf(
      "multiplexed round trip timed out after %d ms", options_.io_timeout_ms)));
}

void MultiplexedTransport::ResetConnection(const Status& cause) {
  resets_.fetch_add(1, std::memory_order_relaxed);
  if (connect_timer_id_ != 0) {
    loop_->CancelTimer(connect_timer_id_);
    connect_timer_id_ = 0;
  }
  if (fd_ >= 0) {
    loop_->Remove(fd_);
    close(fd_);
    fd_ = -1;
  }
  state_ = ConnState::kDisconnected;
  interest_ = 0;
  reader_.Reset();
  writer_.Reset();
  std::map<Key, Pending> failed;
  failed.swap(pending_);
  for (auto& [key, pending] : failed) {
    (void)key;
    loop_->CancelTimer(pending.timer_id);
    pending.done(cause);
  }
}

MultiplexedTransportStats MultiplexedTransport::stats() const {
  MultiplexedTransportStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses = responses_.load(std::memory_order_relaxed);
  out.orphan_responses = orphan_responses_.load(std::memory_order_relaxed);
  out.timeouts = timeouts_.load(std::memory_order_relaxed);
  out.resets = resets_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace embellish::server
