#include "server/response_cache.h"

namespace embellish::server {

ResponseCache::ResponseCache(size_t capacity, size_t max_total_bytes)
    : capacity_(capacity), max_total_bytes_(max_total_bytes) {}

std::string ResponseCache::MakeKey(uint8_t kind, uint64_t session_id,
                                   uint64_t epoch, uint64_t database_epoch,
                                   const std::vector<uint8_t>& payload) {
  std::string key;
  key.reserve(25 + payload.size());
  key.push_back(static_cast<char>(kind));
  for (int shift = 56; shift >= 0; shift -= 8) {
    key.push_back(static_cast<char>(session_id >> shift));
  }
  for (int shift = 56; shift >= 0; shift -= 8) {
    key.push_back(static_cast<char>(epoch >> shift));
  }
  for (int shift = 56; shift >= 0; shift -= 8) {
    key.push_back(static_cast<char>(database_epoch >> shift));
  }
  if (!payload.empty()) {  // data() may be null when empty; append needs non-null
    key.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  }
  return key;
}

bool ResponseCache::Get(const std::string& key, std::vector<uint8_t>* out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  ++hits_;
  return true;
}

void ResponseCache::Put(const std::string& key, std::vector<uint8_t> response) {
  if (capacity_ == 0) return;
  if (2 * key.size() + response.size() > max_total_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    total_bytes_ -= EntryBytes(*it->second);
    it->second->second = std::move(response);
    total_bytes_ += EntryBytes(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictOverBudget();
    return;
  }
  lru_.emplace_front(key, std::move(response));
  index_[key] = lru_.begin();
  total_bytes_ += EntryBytes(lru_.front());
  EvictOverBudget();
}

void ResponseCache::EvictOverBudget() {
  while (lru_.size() > capacity_ ||
         (total_bytes_ > max_total_bytes_ && !lru_.empty())) {
    total_bytes_ -= EntryBytes(lru_.back());
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t ResponseCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

uint64_t ResponseCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResponseCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace embellish::server
