// Versioned request/response framing for the EmbellishServer request loop.
//
// core/wire_format encodes the protocol *payloads* (embellished queries and
// encrypted results) exactly as the paper's §5.2 traffic metric counts them.
// This layer wraps those payloads in a self-describing envelope so a server
// can accept untrusted bytes from many concurrent sessions:
//
//   offset  size  field
//   0       4     magic 0x454D4251 ("EMBQ"), big-endian
//   4       1     version (kProtocolVersion)
//   5       1     kind (FrameKind)
//   6       2     flags, must be zero (reserved for future use)
//   8       8     session id, big-endian
//   16      4     payload size in bytes, big-endian
//   20      4     FNV-1a 32 checksum over bytes [0, 20) plus the payload
//   24      n     payload
//
// The checksum covers the header fields as well as the payload (with the
// checksum field itself excluded by construction), so any single corrupted
// bit anywhere in a frame is detected. DecodeFrame validates sizes before
// touching any attacker-controlled length and returns Status::Corruption on
// every malformed input — exercised bit-by-bit by the fuzz tests.
//
// Payload codecs for the frame kinds that do not already have one in
// core/wire_format (session hello, transported errors, PIR execs) live here
// too.

#ifndef EMBELLISH_SERVER_FRAMING_H_
#define EMBELLISH_SERVER_FRAMING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/benaloh.h"
#include "crypto/pir.h"
#include "index/topk.h"

namespace embellish::server {

inline constexpr uint32_t kFrameMagic = 0x454D4251;  // "EMBQ"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;

/// \brief Upper bound on each big-integer field of a hello payload (64 kbit
///        moduli — far beyond any real KeyLen). The server keeps every
///        registered key resident, so a hostile hello must not be able to
///        pin megabytes per session.
inline constexpr size_t kMaxHelloValueBytes = 8192;

/// \brief What a frame carries. Requests flow client -> server, responses
///        server -> client.
enum class FrameKind : uint8_t {
  kHello = 1,          ///< request: register the session's Benaloh public key
  kHelloOk = 2,        ///< response: registration acknowledged (empty payload)
  kQuery = 3,          ///< request: core::EncodeQuery bytes (PR scheme)
  kResult = 4,         ///< response: core::EncodeResult bytes
  kPirQuery = 5,       ///< request: one PIR execution against one bucket
  kPirResult = 6,      ///< response: the PIR gamma vector
  kError = 7,          ///< response: transported Status
  kTopKQuery = 8,      ///< request: plaintext top-k over the inverted index
  kTopKResult = 9,     ///< response: the ranked (doc, score) prefix
  kShardRequest = 10,  ///< coordinator -> shard: shard-scoped envelope
  kShardResponse = 11, ///< shard -> coordinator: envelope echo + inner frame
  kDegradedResult = 12,  ///< response: partial merge + missing-slice marker
};

/// \brief True for the kinds this protocol version defines.
bool IsKnownFrameKind(uint8_t kind);

/// \brief A decoded frame.
struct Frame {
  uint8_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kError;
  uint64_t session_id = 0;
  std::vector<uint8_t> payload;
};

/// \brief FNV-1a 32-bit hash (the frame checksum primitive).
uint32_t Fnv1a32(const uint8_t* data, size_t size, uint32_t seed = 2166136261u);

/// \brief Wraps `payload` in a checksummed envelope.
std::vector<uint8_t> EncodeFrame(FrameKind kind, uint64_t session_id,
                                 const std::vector<uint8_t>& payload);

/// \brief Parses and validates an envelope; Corruption on any malformed
///        input (short, trailing garbage, bad magic/version/flags/kind, or
///        checksum mismatch).
Result<Frame> DecodeFrame(const std::vector<uint8_t>& bytes);

// --- Payload codecs ---------------------------------------------------------

/// \brief Hello payload: the session's Benaloh public key
///        ([u32 n_size][n][u32 g_size][g][u64 r], all big-endian).
std::vector<uint8_t> EncodeHello(const crypto::BenalohPublicKey& pk);
Result<crypto::BenalohPublicKey> DecodeHello(
    const std::vector<uint8_t>& payload);

/// \brief HelloOk payload: the server's retrieval topology
///        ([u32 shard_count][u32 bucket_count], big-endian). A client needs
///        both to address PIR executions on a sharded server (the bucket
///        field of kPirQuery carries shard * bucket_count + bucket) — and a
///        client that skips this discovery would otherwise silently score
///        only shard 0's fragment of every list. A legacy empty payload
///        decodes as a monolithic server (shard_count 1, bucket_count 0 =
///        unknown).
std::vector<uint8_t> EncodeHelloOk(size_t shard_count, size_t bucket_count);
struct HelloOkPayload {
  size_t shard_count = 1;
  size_t bucket_count = 0;  ///< 0 when the server did not advertise it
};
Result<HelloOkPayload> DecodeHelloOk(const std::vector<uint8_t>& payload);

/// \brief Error payload: [u8 status_code][message bytes].
std::vector<uint8_t> EncodeError(const Status& status);

/// \brief Decodes an error payload; Corruption when it is malformed,
///        otherwise OK with the transported (always non-OK) status in `out`.
Status DecodeError(const std::vector<uint8_t>& payload, Status* out);

/// \brief PIR query payload:
///        [u32 bucket][u32 value_size][u32 col_count][n][q_0]..[q_{c-1}],
///        every value a big-endian residue padded to value_size bytes.
std::vector<uint8_t> EncodePirQuery(size_t bucket,
                                    const crypto::PirQuery& query);
struct PirQueryPayload {
  size_t bucket = 0;
  crypto::PirQuery query;
};
Result<PirQueryPayload> DecodePirQuery(const std::vector<uint8_t>& payload);

/// \brief PIR response payload: [u32 value_size][u32 row_count][gamma...].
std::vector<uint8_t> EncodePirResponse(const crypto::PirResponse& response,
                                       size_t value_size);
Result<crypto::PirResponse> DecodePirResponse(
    const std::vector<uint8_t>& payload);

/// \brief Plaintext top-k query payload:
///        [u32 k][u32 term_count][u32 term_id]... The answer is the full
///        accumulation prefix (EvaluateFull truncated to k) on every server
///        configuration, so the response bytes are independent of sharding —
///        the coordinator merge and the monolithic evaluation cannot differ.
std::vector<uint8_t> EncodeTopKQuery(size_t k,
                                     const std::vector<wordnet::TermId>& terms);
struct TopKQueryPayload {
  size_t k = 0;
  std::vector<wordnet::TermId> terms;
};
Result<TopKQueryPayload> DecodeTopKQuery(const std::vector<uint8_t>& payload);

/// \brief Top-k response payload: [u32 count]([u32 doc][u64 score])..., in
///        canonical (score desc, doc asc) order.
std::vector<uint8_t> EncodeTopKResult(const std::vector<index::ScoredDoc>& docs);
Result<std::vector<index::ScoredDoc>> DecodeTopKResult(
    const std::vector<uint8_t>& payload);

// --- Shard envelope ---------------------------------------------------------

/// \brief The shard-scoped envelope a coordinator wraps downstream requests
///        in (kShardRequest) and a shard echoes on its responses
///        (kShardResponse):
///
///          [u32 shard_id][u64 coordinator_epoch][u64 seq][u32 inner_size]
///          [inner frame bytes]
///
///        The envelope rides inside a checksummed frame, so every single-bit
///        flip anywhere in it is detected at the frame layer; the explicit
///        inner_size additionally pins the inner frame's extent against
///        truncation that forges a shorter-but-valid outer payload. The
///        epoch fences out stale coordinators after a takeover, and the seq
///        echo lets the coordinator detect reordered or replayed responses
///        on a transport. An empty inner frame (inner_size 0) is a ping: the
///        shard answers with a kHelloOk advertising its topology, which is
///        how the coordinator discovers bucket_count and verifies liveness.
struct ShardEnvelope {
  size_t shard_id = 0;
  uint64_t epoch = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> inner;  ///< a complete frame, or empty for a ping
};

/// \brief Encodes the envelope. A shard id beyond the u32 wire width
///        saturates to UINT32_MAX (like EncodePirQuery's bucket field),
///        which DecodeShardEnvelope rejects as a reserved sentinel — an
///        overflowed id errors out instead of aliasing another shard.
std::vector<uint8_t> EncodeShardEnvelope(size_t shard_id, uint64_t epoch,
                                         uint64_t seq,
                                         const std::vector<uint8_t>& inner);

/// \brief Parses and validates an envelope payload; Corruption on any
///        malformed input (truncation, inner_size disagreeing with the bytes
///        present, trailing garbage, or the UINT32_MAX shard-id sentinel).
Result<ShardEnvelope> DecodeShardEnvelope(const std::vector<uint8_t>& payload);

// --- Degraded result --------------------------------------------------------

/// \brief A coordinator's partial answer when whole replica groups are down
///        and partial-result mode is on (see
///        ShardCoordinatorOptions::allow_partial_results):
///
///          [u8 inner_kind][u32 missing_count][u32 slice]...[inner payload]
///
///        `inner_kind` names the payload the surviving shards merged into
///        (kResult or kTopKResult), `missing` lists the slices whose
///        documents are absent from that merge (sorted ascending), and the
///        remaining bytes are exactly the payload a full merge over the
///        surviving slices produces. The marker is typed so a client can
///        never mistake a partial answer for a complete one.
struct DegradedResultPayload {
  FrameKind inner_kind = FrameKind::kResult;
  std::vector<uint32_t> missing;  ///< unreachable slices, ascending
  std::vector<uint8_t> inner_payload;
};

std::vector<uint8_t> EncodeDegradedResult(FrameKind inner_kind,
                                          const std::vector<uint32_t>& missing,
                                          const std::vector<uint8_t>& inner);

/// \brief Parses a degraded-result payload; Corruption on malformed input
///        (unknown or non-result inner kind, empty or unsorted missing
///        list, truncation).
Result<DegradedResultPayload> DecodeDegradedResult(
    const std::vector<uint8_t>& payload);

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_FRAMING_H_
