// Client-side counterpart of the EmbellishServer: owns one session's keypair
// and embellishment state, speaks the framed wire protocol, and reuses
// encoded uplink bytes for recurring genuine-term sets.
//
// Reuse rationale (the session-consistency property, core/session.h): a
// genuine term's decoys are a deterministic function of the bucket
// organization, so re-issuing a genuine-term set reproduces the same term
// multiset — which is everything the adversary observes. Re-encrypting the
// indicators would spend user CPU to refresh randomness the threat model
// gains nothing from, so the client caches the encoded query payload per
// sorted genuine-term set and re-sends it verbatim. This is also what makes
// the server's response cache effective: identical uplink bytes let the
// server skip decode + Algorithm 4 + encode entirely.

#ifndef EMBELLISH_SERVER_SESSION_CLIENT_H_
#define EMBELLISH_SERVER_SESSION_CLIENT_H_

#include <map>
#include <memory>
#include <vector>

#include "core/private_retrieval.h"
#include "server/framing.h"

namespace embellish::server {

/// \brief One user session speaking the framed protocol.
class SessionClient {
 public:
  /// \brief Generates the session keypair (deterministic given `seed`).
  ///        `buckets` must outlive the client.
  static Result<SessionClient> Create(
      uint64_t session_id, const core::BucketOrganization* buckets,
      const crypto::BenalohKeyOptions& key_options, uint64_t seed);

  uint64_t session_id() const { return session_id_; }
  const crypto::BenalohPublicKey& public_key() const {
    return keys_->public_key();
  }

  /// \brief The registration frame; send once before any query.
  std::vector<uint8_t> HelloFrame() const;

  /// \brief The framed embellished query for `genuine_terms`. Encoded
  ///        payloads are cached per sorted genuine-term set and reused.
  Result<std::vector<uint8_t>> QueryFrame(
      const std::vector<wordnet::TermId>& genuine_terms);

  /// \brief Decodes a server response frame and runs Algorithm 5 post
  ///        filtering; kError frames surface as their transported Status.
  Result<std::vector<index::ScoredDoc>> DecodeResultFrame(
      const std::vector<uint8_t>& response, size_t k);

  /// \brief Cumulative client-side cost accounting (uplink/downlink count
  ///        whole frames; user CPU covers formulation and post filtering).
  const core::RetrievalCosts& costs() const { return costs_; }

  /// \brief Distinct genuine-term sets with a cached uplink encoding.
  size_t encoded_query_cache_size() const { return uplink_cache_.size(); }

 private:
  SessionClient(uint64_t session_id, const core::BucketOrganization* buckets,
                std::unique_ptr<crypto::BenalohKeyPair> keys, uint64_t seed);

  // Bound on distinct cached uplink encodings; when reached the cache is
  // reset (a long-lived session re-encodes rarely-repeated sets rather than
  // growing without limit).
  static constexpr size_t kMaxCachedEncodings = 256;

  uint64_t session_id_;
  // keys_ lives behind a unique_ptr so the pointers handed to client_ stay
  // stable when the SessionClient itself is moved.
  std::unique_ptr<crypto::BenalohKeyPair> keys_;
  core::PrivateRetrievalClient client_;
  Rng rng_;
  core::RetrievalCosts costs_;
  std::map<std::vector<wordnet::TermId>, std::vector<uint8_t>> uplink_cache_;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_SESSION_CLIENT_H_
