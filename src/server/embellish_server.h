// The EmbellishServer: a request loop tying SearchSession-style clients,
// the framed wire protocol, the inverted index, and the PR/PIR answer
// engines together.
//
// The paper's §5.2 evaluation measures per-query server cost; this subsystem
// is the piece that serves those queries as real traffic. Frames from many
// concurrent sessions are accepted, decoded, dispatched, and answered:
//
//   kHello      registers the session's Benaloh public key,
//   kQuery      runs Algorithm 4 over the inverted index (PR scheme),
//   kPirQuery   runs one Kushilevitz–Ostrovsky execution against one bucket,
//   kTopKQuery  runs a plaintext top-k evaluation (the full-accumulation
//               prefix, so the answer bytes are sharding-independent).
//
// HandleBatch fans a batch of request frames out over the shared ThreadPool.
// The pool is a multi-region work-stealing executor (common/thread_pool.h),
// so the per-request answer engines run on the SAME pool: a batch worker's
// query fans its shards (and the PIR answer kernel its rows) out as nested
// regions, and idle workers steal across regions instead of leaving the
// losers inline. Batches of one or two requests skip the fan-out entirely —
// region bookkeeping costs more than it buys at that size. A bucket-set
// keyed response cache (see response_cache.h) short-circuits the recurring
// co-bucket decoy sets that session-consistent embellishment produces.
//
// Sharding (options.shard_count > 1): the index is document-partitioned
// into N shards (index/sharding.h) and queries are answered by the sharded
// engines (core/sharded_retrieval.h). PR queries fan out across all shards
// on the shared executor — options.shard_threads caps one query's draw on
// the pool — and the merged response frame is bit-identical to the
// monolithic server's. PIR requests address one (shard, bucket) pair: the
// frame's bucket field carries shard * bucket_count + bucket, each shard
// answers independently behind its own mutex, and cache entries are keyed
// per shard.
//
// Slice mode (options.shard_slice set): the server owns one slice of an
// N-way document partition and behaves as a monolithic server over it —
// the remote-shard deployment, one process per slice behind a
// ShardCoordinator (server/shard_coordinator.h) that merges the slices'
// answers back into the monolithic bytes.
//
// Every request produces a response frame; malformed or failing requests are
// answered with a kError frame carrying the transported Status, so one
// hostile client cannot take the loop down.

#ifndef EMBELLISH_SERVER_EMBELLISH_SERVER_H_
#define EMBELLISH_SERVER_EMBELLISH_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/pir_retrieval.h"
#include "core/private_retrieval.h"
#include "core/sharded_retrieval.h"
#include "index/sharding.h"
#include "server/framing.h"
#include "server/response_cache.h"
#include "server/session_table.h"

namespace embellish::server {

// Fwd-declared so this header stays free of the event-loop stack; include
// server/async_frontend.h to call ServeAsync.
class AsyncFrontEnd;
class EventLoop;
struct AsyncFrontEndOptions;

/// \brief Server construction knobs.
struct EmbellishServerOptions {
  /// Response-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 1024;

  /// Response-cache budget in bytes (keys embed request payloads, so entry
  /// sizes are attacker-controlled; this is the bound that holds).
  size_t cache_max_bytes = 64u << 20;

  /// Maximum registered sessions. Hellos for fresh session ids beyond this
  /// are refused (existing sessions may always re-register), bounding the
  /// memory a hostile client can pin with throwaway registrations.
  size_t max_sessions = 65536;

  /// Idle-session expiry horizon, in handled frames (a logical clock — the
  /// server has no wall clock of its own). A session whose key has not been
  /// touched for this many frames is swept: superseded and abandoned Benaloh
  /// keys are released instead of staying resident until the id happens to
  /// re-hello, so a registration storm of throwaway ids cannot pin
  /// max_sessions keys forever (and, once the table fills, cannot lock
  /// genuine new sessions out permanently). Sweeps run amortized — on a
  /// hello every kSessionSweepStride hellos, and always before refusing a
  /// fresh id for capacity. 0 disables expiry (sessions live until
  /// overwritten or the server dies).
  uint64_t session_idle_frames = 1u << 20;

  /// Disk model charged per touched bucket (see storage/block_device.h).
  storage::DiskModelOptions disk;

  /// Algorithm 4 execution options.
  core::PrivateRetrievalServerOptions pr;

  /// Document shards. 1 (default) serves the monolithic index unchanged;
  /// N > 1 partitions it per `shard_partition` and answers every query
  /// through the sharded engines. Results stay bit-identical either way.
  size_t shard_count = 1;

  /// How documents map to shards when shard_count > 1.
  index::ShardPartition shard_partition = index::ShardPartition::kDocRange;

  /// Cap on how many of one query's shards are evaluated concurrently on
  /// the shared executor (there is no dedicated shard pool any more: shard
  /// fan-out regions nest inside batch regions on one pool, and idle
  /// workers steal across them). 0 — the default — runs one task per
  /// shard; 1 evaluates a query's shards serially within the handling
  /// thread (batch-level parallelism still touches different shards
  /// concurrently); N caps a single query's draw on the pool so heavy
  /// batch traffic keeps worker headroom. A sharded server constructed
  /// WITHOUT a pool but with shard_threads > 1 spawns an owned executor of
  /// that width and serves everything from it — the pre-executor behavior
  /// (a dedicated shard pool) without the old one-region-at-a-time
  /// collision. Results are bit-identical at any setting.
  size_t shard_threads = 0;

  /// Slice mode: serve exactly shard `shard_slice` of a
  /// `shard_slice_count`-way document partition of the index — the
  /// remote-shard deployment, one process per slice behind a
  /// ShardCoordinator (server/shard_coordinator.h). The server behaves as a
  /// monolithic server over the slice's sub-index: PR queries answer only
  /// the slice's documents, kPirQuery bucket fields are slice-local, and
  /// the hello-ok advertises shard_count 1 (the *coordinator* owns the
  /// global topology). SIZE_MAX (the default) disables slice mode. Mutually
  /// exclusive with shard_count > 1; an invalid slice configuration
  /// (slice >= count, or combined with in-process sharding) falls back to
  /// serving the full index and is flagged by slice_config_invalid() — a
  /// ShardEndpoint refuses to serve such a server.
  size_t shard_slice = SIZE_MAX;

  /// Total slices of the partition `shard_slice` addresses.
  size_t shard_slice_count = 1;

  /// In-flight request budget across HandleFrame/HandleBatch; requests
  /// beyond it are shed with a typed kBusy error frame instead of queueing
  /// without bound — overload degrades into fast refusals the client can
  /// retry, not latency collapse. 0 — the default — disables admission
  /// control.
  size_t max_inflight = 0;
};

/// \brief Aggregate counters; a consistent snapshot is returned by stats().
struct ServerStats {
  uint64_t frames = 0;        ///< requests handled (including malformed)
  uint64_t hellos = 0;        ///< sessions (re-)registered
  uint64_t queries = 0;       ///< PR queries answered (cache hits included)
  uint64_t pir_queries = 0;   ///< PIR executions answered
  uint64_t topk_queries = 0;  ///< plaintext top-k queries answered
  uint64_t errors = 0;        ///< kError responses produced
  uint64_t shed = 0;          ///< requests refused with kBusy (admission)
  uint64_t batches = 0;       ///< HandleBatch calls
  uint64_t sessions_expired = 0;  ///< idle sessions swept (keys released)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t uplink_bytes = 0;    ///< request frame bytes accepted
  uint64_t downlink_bytes = 0;  ///< response frame bytes produced
  double server_cpu_ms = 0;     ///< answer-engine CPU (cache hits cost none)
  double server_io_ms = 0;      ///< simulated disk model
};

/// \brief Multi-session batched answer server.
class EmbellishServer {
 public:
  /// \brief `layout` may be null (skips I/O accounting); `pool` may be null
  ///        (HandleBatch degrades to a serial loop). All pointers must
  ///        outlive the server.
  EmbellishServer(const index::InvertedIndex* index,
                  const core::BucketOrganization* buckets,
                  const storage::StorageLayout* layout,
                  const EmbellishServerOptions& options = {},
                  ThreadPool* pool = nullptr);

  /// \brief Handles one request frame; always returns a response frame
  ///        (kError on any failure, echoing the request's session id when it
  ///        was decodable).
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& request);

  /// \brief Handles a batch of request frames over the thread pool;
  ///        `response[i]` answers `requests[i]`. Responses are bit-identical
  ///        to handling each frame alone — batching changes only the clock.
  std::vector<std::vector<uint8_t>> HandleBatch(
      const std::vector<std::vector<uint8_t>>& requests);

  /// \brief Serves this server's HandleBatch behind an AsyncFrontEnd on
  ///        `loop` (started, outliving the front end): the async request
  ///        loop where no thread blocks on a socket and the response bytes
  ///        are identical to HandleFrame's. Takes ownership of `listen_fd`.
  Result<std::unique_ptr<AsyncFrontEnd>> ServeAsync(int listen_fd,
                                                    EventLoop* loop);
  Result<std::unique_ptr<AsyncFrontEnd>> ServeAsync(
      int listen_fd, EventLoop* loop, const AsyncFrontEndOptions& options);

  /// \brief Number of registered sessions.
  size_t session_count() const;

  /// \brief Configured shard count (1 = monolithic; a slice server is
  ///        monolithic over its slice).
  size_t shard_count() const {
    return sharded_index_ != nullptr ? sharded_index_->shard_count() : 1;
  }

  /// \brief Buckets in the organization this server answers against.
  size_t bucket_count() const { return bucket_count_; }

  /// \brief True when this server serves one slice of a document partition
  ///        (see EmbellishServerOptions::shard_slice).
  bool serves_slice() const { return slice_index_ != nullptr; }

  /// \brief True when slice mode was requested but the configuration was
  ///        invalid (slice >= count, zero count, or combined with
  ///        in-process sharding), so the server fell back to the full
  ///        index. A ShardEndpoint refuses to serve such a server: a
  ///        misconfigured slice behind a coordinator would merge
  ///        overlapping document sets and silently diverge from the
  ///        monolithic answer, which must fail loudly instead.
  bool slice_config_invalid() const {
    return options_.shard_slice != SIZE_MAX && slice_index_ == nullptr;
  }

  /// \brief The shard-qualified bucket field a kPirQuery frame must carry
  ///        to address `bucket` on `shard` of this server. The wire field
  ///        is 32 bits; EncodePirQuery saturates larger values to
  ///        UINT32_MAX, which a sharded server rejects as a reserved
  ///        sentinel — an overflowed address errors instead of aliasing
  ///        another pair (relevant only past 2^32 shard*bucket
  ///        combinations).
  size_t PirBucketField(size_t shard, size_t bucket) const {
    return shard * bucket_count_ + bucket;
  }

  ServerStats stats() const;

 private:
  // Per-request counters merged into totals_ under stats_mu_.
  struct RequestOutcome {
    std::vector<uint8_t> response;
    ServerStats delta;
  };

  RequestOutcome ProcessOne(const std::vector<uint8_t>& request);

  // Admission control: grants up to `want` in-flight slots (all of them
  // when max_inflight is 0); ReleaseInflight returns what was granted.
  // BusyOutcome is the typed kBusy response for a shed request.
  size_t AcquireInflight(size_t want);
  void ReleaseInflight(size_t granted);
  static RequestOutcome BusyOutcome();

  // Folds one request's counters into totals_ under stats_mu_.
  void MergeDelta(const ServerStats& delta);

  RequestOutcome HandleHello(const Frame& frame);
  RequestOutcome HandleQuery(const Frame& frame);
  RequestOutcome HandlePirQuery(const Frame& frame);
  RequestOutcome HandleTopK(const Frame& frame);
  static RequestOutcome ErrorOutcome(uint64_t session_id,
                                     const Status& status);

  // Slice mode: the owned sub-index (and its layout) this server answers
  // from; null when serving the caller's full index. Built before the
  // answer engines so their construction can point at the slice.
  static std::unique_ptr<index::InvertedIndex> BuildSliceIndex(
      const index::InvertedIndex& index, const EmbellishServerOptions& options);

  const EmbellishServerOptions options_;
  std::unique_ptr<index::InvertedIndex> slice_index_;
  std::unique_ptr<storage::StorageLayout> slice_layout_;
  const index::InvertedIndex* serve_index_;  // slice or caller's index
  // Spawned only when the caller passed no pool but asked for intra-query
  // shard parallelism (shard_threads > 1 on a sharded server); pool_ then
  // points at it and the whole server shares it. Declared before the
  // engines so it exists when they are constructed.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // caller's pool or owned_pool_; null => all serial
  // The monolithic engines share the executor: their internal regions
  // (Algorithm 4 bucket entries, PIR answer rows) nest inside batch
  // regions and compose.
  const core::PrivateRetrievalServer pr_server_;
  const core::PirRetrievalServer pir_server_;
  const size_t bucket_count_;

  // Sharded engines; null when shard_count <= 1 (monolithic dispatch).
  // They fan out over the same shared executor, capped by shard_threads.
  std::unique_ptr<index::ShardedIndex> sharded_index_;
  std::vector<storage::StorageLayout> shard_layouts_;
  std::unique_ptr<core::ShardedPrivateRetrievalServer> sharded_pr_;
  std::unique_ptr<core::ShardedPirRetrievalServer> sharded_pir_;

  // Registered sessions: the key plus a registration epoch folded into
  // cache keys so a re-hello can never be answered with a cached response
  // encrypted under a superseded key; idle entries expire (see
  // session_idle_frames and server/session_table.h).
  SessionTable sessions_;

  // Logical clock for session idle tracking: handled frames.
  std::atomic<uint64_t> frame_clock_{0};

  // In-flight request count against options_.max_inflight.
  std::atomic<size_t> inflight_{0};

  // PirRetrievalServer's lazy matrix cache is not thread-safe; batch workers
  // serialize PIR answers through this mutex (PR queries run concurrently).
  // When sharded, shard_pir_mu_[shard] replaces it: requests addressing
  // different shards answer concurrently.
  mutable std::mutex pir_mu_;
  mutable std::vector<std::unique_ptr<std::mutex>> shard_pir_mu_;

  ResponseCache cache_;

  mutable std::mutex stats_mu_;
  ServerStats totals_;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_EMBELLISH_SERVER_H_
