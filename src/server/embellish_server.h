// The EmbellishServer: a request loop tying SearchSession-style clients,
// the framed wire protocol, the inverted index, and the PR/PIR answer
// engines together.
//
// The paper's §5.2 evaluation measures per-query server cost; this subsystem
// is the piece that serves those queries as real traffic. Frames from many
// concurrent sessions are accepted, decoded, dispatched, and answered:
//
//   kHello      registers the session's Benaloh public key,
//   kQuery      runs Algorithm 4 over the inverted index (PR scheme),
//   kPirQuery   runs one Kushilevitz–Ostrovsky execution against one bucket,
//   kTopKQuery  runs a plaintext top-k evaluation (the full-accumulation
//               prefix, so the answer bytes are sharding-independent).
//
// HandleBatch fans a batch of request frames out over the shared ThreadPool.
// The pool is a multi-region work-stealing executor (common/thread_pool.h),
// so the per-request answer engines run on the SAME pool: a batch worker's
// query fans its shards (and the PIR answer kernel its rows) out as nested
// regions, and idle workers steal across regions instead of leaving the
// losers inline. Batches of one or two requests skip the fan-out entirely —
// region bookkeeping costs more than it buys at that size. A bucket-set
// keyed response cache (see response_cache.h) short-circuits the recurring
// co-bucket decoy sets that session-consistent embellishment produces.
//
// Sharding (options.shard_count > 1): the index is document-partitioned
// into N shards (index/sharding.h) and queries are answered by the sharded
// engines (core/sharded_retrieval.h). PR queries fan out across all shards
// on the shared executor — options.shard_threads caps one query's draw on
// the pool — and the merged response frame is bit-identical to the
// monolithic server's. PIR requests address one (shard, bucket) pair: the
// frame's bucket field carries shard * bucket_count + bucket, shards answer
// independently (and concurrently — the engines' lazy matrix caches are
// internally synchronized), and cache entries are keyed per shard.
//
// Batched PIR (PR 9): HandleBatch answers the PIR frames of one dispatched
// batch in shared sweeps. The dispatch pass defers every decoded,
// cache-missed kPirQuery into a per-batch collector instead of computing it
// inline; the batch then groups the deferred queries by (database epoch,
// shard) — the epoch is the batch's single pinned snapshot, so within a
// batch the grouping key is the shard, and frames that arrive around a
// cutover land in different batches and therefore different groups — and
// answers each group through core::PirRetrievalServer::AnswerBatch: each
// bucket matrix is swept once for all of the group's queries
// (crypto::PirServer::AnswerBatch extracts each row once), and the
// per-session response frames are rebuilt from the per-query gammas. The
// per-shard mutex that used to serialize whole answer computations is gone;
// what remains serialized is queue admission into the collector and the
// matrix caches' lazy builds. Every response stays bit-identical to
// HandleFrame's.
//
// Slice mode (options.shard_slice set): the server owns one slice of an
// N-way document partition and behaves as a monolithic server over it —
// the remote-shard deployment, one process per slice behind a
// ShardCoordinator (server/shard_coordinator.h) that merges the slices'
// answers back into the monolithic bytes.
//
// Live index (PR 8): the server serves from an index::IndexCatalog instead
// of raw index pointers. Each HandleFrame/HandleBatch call pins the
// catalog's current IndexEpoch (shared_ptr acquire) and answers the whole
// batch against that immutable snapshot — a background ApplyDelta or
// Reshard installing a successor mid-batch changes nothing the batch can
// observe, and the pinned snapshot cannot be torn down under it. The
// per-epoch answer engines (cheap pointer-bundles) are cached and rebuilt
// only when the epoch advances; response-cache keys carry the database
// epoch so a cutover invalidates stale answers without flushing unrelated
// entries. The legacy raw-pointer constructor survives as a shim wrapping
// its arguments in a single-frozen-epoch catalog. No unpinned index
// pointer crosses a batch boundary, and no answer-path thread ever
// performs a heavy build (counted: common/answer_path.h).
//
// Every request produces a response frame; malformed or failing requests are
// answered with a kError frame carrying the transported Status, so one
// hostile client cannot take the loop down.

#ifndef EMBELLISH_SERVER_EMBELLISH_SERVER_H_
#define EMBELLISH_SERVER_EMBELLISH_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/pir_retrieval.h"
#include "core/private_retrieval.h"
#include "core/sharded_retrieval.h"
#include "index/epoch.h"
#include "index/sharding.h"
#include "server/framing.h"
#include "server/response_cache.h"
#include "server/session_table.h"

namespace embellish::server {

// Fwd-declared so this header stays free of the event-loop stack; include
// server/async_frontend.h to call ServeAsync.
class AsyncFrontEnd;
class EventLoop;
struct AsyncFrontEndOptions;

/// \brief Server construction knobs.
struct EmbellishServerOptions {
  /// Response-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 1024;

  /// Response-cache budget in bytes (keys embed request payloads, so entry
  /// sizes are attacker-controlled; this is the bound that holds).
  size_t cache_max_bytes = 64u << 20;

  /// Maximum registered sessions. Hellos for fresh session ids beyond this
  /// are refused (existing sessions may always re-register), bounding the
  /// memory a hostile client can pin with throwaway registrations.
  size_t max_sessions = 65536;

  /// Idle-session expiry horizon, in handled frames (a logical clock — the
  /// server has no wall clock of its own). A session whose key has not been
  /// touched for this many frames is swept: superseded and abandoned Benaloh
  /// keys are released instead of staying resident until the id happens to
  /// re-hello, so a registration storm of throwaway ids cannot pin
  /// max_sessions keys forever (and, once the table fills, cannot lock
  /// genuine new sessions out permanently). Sweeps run amortized — on a
  /// hello every kSessionSweepStride hellos, and always before refusing a
  /// fresh id for capacity. 0 disables expiry (sessions live until
  /// overwritten or the server dies).
  uint64_t session_idle_frames = 1u << 20;

  /// Disk model charged per touched bucket (see storage/block_device.h).
  storage::DiskModelOptions disk;

  /// Algorithm 4 execution options.
  core::PrivateRetrievalServerOptions pr;

  /// Document shards. 1 (default) serves the monolithic index unchanged;
  /// N > 1 partitions it per `shard_partition` and answers every query
  /// through the sharded engines. Results stay bit-identical either way.
  size_t shard_count = 1;

  /// How documents map to shards when shard_count > 1.
  index::ShardPartition shard_partition = index::ShardPartition::kDocRange;

  /// Cap on how many of one query's shards are evaluated concurrently on
  /// the shared executor (there is no dedicated shard pool any more: shard
  /// fan-out regions nest inside batch regions on one pool, and idle
  /// workers steal across them). 0 — the default — runs one task per
  /// shard; 1 evaluates a query's shards serially within the handling
  /// thread (batch-level parallelism still touches different shards
  /// concurrently); N caps a single query's draw on the pool so heavy
  /// batch traffic keeps worker headroom. A sharded server constructed
  /// WITHOUT a pool but with shard_threads > 1 spawns an owned executor of
  /// that width and serves everything from it — the pre-executor behavior
  /// (a dedicated shard pool) without the old one-region-at-a-time
  /// collision. Results are bit-identical at any setting.
  size_t shard_threads = 0;

  /// Slice mode: serve exactly shard `shard_slice` of a
  /// `shard_slice_count`-way document partition of the index — the
  /// remote-shard deployment, one process per slice behind a
  /// ShardCoordinator (server/shard_coordinator.h). The server behaves as a
  /// monolithic server over the slice's sub-index: PR queries answer only
  /// the slice's documents, kPirQuery bucket fields are slice-local, and
  /// the hello-ok advertises shard_count 1 (the *coordinator* owns the
  /// global topology). SIZE_MAX (the default) disables slice mode. Mutually
  /// exclusive with shard_count > 1; an invalid slice configuration
  /// (slice >= count, or combined with in-process sharding) falls back to
  /// serving the full index and is flagged by slice_config_invalid() — a
  /// ShardEndpoint refuses to serve such a server.
  size_t shard_slice = SIZE_MAX;

  /// Total slices of the partition `shard_slice` addresses.
  size_t shard_slice_count = 1;

  /// In-flight request budget across HandleFrame/HandleBatch; requests
  /// beyond it are shed with a typed kBusy error frame instead of queueing
  /// without bound — overload degrades into fast refusals the client can
  /// retry, not latency collapse. 0 — the default — disables admission
  /// control.
  size_t max_inflight = 0;
};

/// \brief Aggregate counters; a consistent snapshot is returned by stats().
struct ServerStats {
  uint64_t frames = 0;        ///< requests handled (including malformed)
  uint64_t hellos = 0;        ///< sessions (re-)registered
  uint64_t queries = 0;       ///< PR queries answered (cache hits included)
  uint64_t pir_queries = 0;   ///< PIR executions answered
  uint64_t topk_queries = 0;  ///< plaintext top-k queries answered
  uint64_t errors = 0;        ///< kError responses produced
  uint64_t shed = 0;          ///< requests refused with kBusy (admission)
  uint64_t batches = 0;       ///< HandleBatch calls
  uint64_t sessions_expired = 0;  ///< idle sessions swept (keys released)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t uplink_bytes = 0;    ///< request frame bytes accepted
  uint64_t downlink_bytes = 0;  ///< response frame bytes produced
  double server_cpu_ms = 0;     ///< answer-engine CPU (cache hits cost none)
  double server_io_ms = 0;      ///< simulated disk model

  // Live-index counters (snapshotted from the IndexCatalog; the legacy
  // frozen-catalog shim reports zeros for the mutation counters).
  uint64_t epoch_swaps = 0;          ///< successor snapshots installed
  uint64_t delta_docs_ingested = 0;  ///< documents ingested via ApplyDelta
  uint64_t reshard_micros = 0;       ///< background reshard build time
  uint64_t pinned_epochs = 0;        ///< snapshots currently alive
  uint64_t answer_path_builds = 0;   ///< heavy builds on answer threads (0!)

  // Impact-bound shard skipping on the plaintext top-k path.
  uint64_t topk_shards_visited = 0;
  uint64_t topk_shards_skipped = 0;

  // Cross-query batched PIR: HandleBatch groups a batch's PIR frames by
  // (database epoch, shard) and answers each group in shared sweeps.
  uint64_t pir_batch_sweeps = 0;     ///< shared matrix sweeps run
  uint64_t pir_batched_queries = 0;  ///< PIR queries answered via a shared sweep
  uint64_t pir_batch_budget_splits = 0;  ///< sub-batches forced by the
                                         ///< batch-wide table budget
};

/// \brief Multi-session batched answer server.
class EmbellishServer {
 public:
  /// \brief Serve from a live catalog (not owned; must outlive the server).
  ///        The serving topology — monolithic, sharded, slice — follows
  ///        each pinned epoch: options.shard_count/shard_partition are
  ///        ignored in favor of the catalog's sharding, while
  ///        options.shard_slice selects the slice of the epoch's partition
  ///        to serve (valid while the epoch's shard count matches
  ///        shard_slice_count; a mismatched epoch serves the full index and
  ///        reports slice_config_invalid()). `pool` may be null (HandleBatch
  ///        degrades to a serial loop).
  EmbellishServer(index::IndexCatalog* catalog,
                  const EmbellishServerOptions& options = {},
                  ThreadPool* pool = nullptr);

  /// \brief Legacy frozen-index constructor: wraps the raw pointers in an
  ///        owned single-frozen-epoch IndexCatalog (IndexCatalog::Freeze)
  ///        and serves from that. `layout` may be null (skips I/O
  ///        accounting); `pool` may be null (HandleBatch degrades to a
  ///        serial loop). All pointers must outlive the server. Behavior —
  ///        including sharding via options.shard_count and slice mode — is
  ///        unchanged from the pre-catalog server.
  EmbellishServer(const index::InvertedIndex* index,
                  const core::BucketOrganization* buckets,
                  const storage::StorageLayout* layout,
                  const EmbellishServerOptions& options = {},
                  ThreadPool* pool = nullptr);

  /// \brief Handles one request frame; always returns a response frame
  ///        (kError on any failure, echoing the request's session id when it
  ///        was decodable).
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& request);

  /// \brief Handles a batch of request frames over the thread pool;
  ///        `response[i]` answers `requests[i]`. Responses are bit-identical
  ///        to handling each frame alone — batching changes only the clock.
  std::vector<std::vector<uint8_t>> HandleBatch(
      const std::vector<std::vector<uint8_t>>& requests);

  /// \brief Serves this server's HandleBatch behind an AsyncFrontEnd on
  ///        `loop` (started, outliving the front end): the async request
  ///        loop where no thread blocks on a socket and the response bytes
  ///        are identical to HandleFrame's. Takes ownership of `listen_fd`.
  Result<std::unique_ptr<AsyncFrontEnd>> ServeAsync(int listen_fd,
                                                    EventLoop* loop);
  Result<std::unique_ptr<AsyncFrontEnd>> ServeAsync(
      int listen_fd, EventLoop* loop, const AsyncFrontEndOptions& options);

  /// \brief Number of registered sessions.
  size_t session_count() const;

  /// \brief Shard count of the current epoch's serving topology (1 =
  ///        monolithic; a slice server is monolithic over its slice).
  size_t shard_count() const;

  /// \brief Buckets in the organization this server answers against.
  size_t bucket_count() const { return bucket_count_; }

  /// \brief True when this server serves one slice of a document partition
  ///        (see EmbellishServerOptions::shard_slice) under the current
  ///        epoch.
  bool serves_slice() const;

  /// \brief True when slice mode was requested but the configuration was
  ///        invalid (slice >= count, zero count, combined with in-process
  ///        sharding, or — catalog-backed — an epoch whose partition does
  ///        not match the slice topology), so the server fell back. A
  ///        ShardEndpoint refuses to serve such a server: a misconfigured
  ///        slice behind a coordinator would merge overlapping document
  ///        sets and silently diverge from the monolithic answer, which
  ///        must fail loudly instead.
  bool slice_config_invalid() const;

  /// \brief The catalog this server serves from (the owned shim catalog for
  ///        legacy-constructed servers).
  const index::IndexCatalog& catalog() const { return *catalog_; }

  /// \brief The shard-qualified bucket field a kPirQuery frame must carry
  ///        to address `bucket` on `shard` of this server. The wire field
  ///        is 32 bits; EncodePirQuery saturates larger values to
  ///        UINT32_MAX, which a sharded server rejects as a reserved
  ///        sentinel — an overflowed address errors instead of aliasing
  ///        another pair (relevant only past 2^32 shard*bucket
  ///        combinations).
  size_t PirBucketField(size_t shard, size_t bucket) const {
    return shard * bucket_count_ + bucket;
  }

  ServerStats stats() const;

 private:
  // Per-request counters merged into totals_ under stats_mu_. `deferred`
  // marks a PIR request parked in the batch collector: the response is
  // empty for now and the remaining counters (downlink, pir_queries, CPU)
  // merge when the shared sweep finishes it.
  struct RequestOutcome {
    std::vector<uint8_t> response;
    ServerStats delta;
    bool deferred = false;
  };

  // Everything one batch needs to answer against one pinned epoch. The
  // snapshot shared_ptr is the FIRST member: every raw pointer below (the
  // engines' internal index/layout pointers included) points into the
  // pinned snapshot, so it can never dangle while the bundle is alive —
  // the satellite-2 fencing: no unpinned index pointer crosses a batch
  // boundary. Engine construction is pointer-assembly (no index builds),
  // so resolving a fresh epoch on the answer path stays cheap; the lazy
  // PIR bucket matrices re-warm per epoch on first use, exactly as a
  // freshly constructed server's would.
  struct EpochEngines {
    std::shared_ptr<const index::IndexEpoch> epoch;

    const index::InvertedIndex* serve_index = nullptr;    // slice or full
    const storage::StorageLayout* serve_layout = nullptr; // may be null
    bool slice_active = false;
    bool slice_invalid = false;
    size_t advertised_shards = 1;  // hello-ok topology (slice advertises 1)

    // Monolithic engines (null when serving sharded). The PIR engines are
    // internally thread-safe (their lazy matrix caches serialize only their
    // builds), so no external answer-compute mutex exists any more — the
    // per-shard lock convoy that serialized concurrent PIR answers died
    // with it.
    std::unique_ptr<core::PrivateRetrievalServer> pr;
    std::unique_ptr<core::PirRetrievalServer> pir;

    // Sharded engines (null when serving monolithic/slice).
    std::unique_ptr<core::ShardedPrivateRetrievalServer> sharded_pr;
    std::unique_ptr<core::ShardedPirRetrievalServer> sharded_pir;
  };

  // One dispatched batch's deferred PIR work: the dispatch pass parks every
  // decoded, cache-missed kPirQuery here, and the batch answers them in
  // shared per-(epoch, shard) sweeps afterwards. The mutex guards queue
  // admission only — the one residue of the per-shard serialization that
  // used to span whole answer computations.
  struct PendingPir {
    size_t slot = 0;  // index into the batch's responses
    uint64_t session_id = 0;
    size_t shard = 0;
    size_t bucket = 0;        // shard-local
    PirQueryPayload payload;  // owns the decoded query
    std::string cache_key;    // empty when the cache is off
  };
  struct PirBatchCollector {
    std::mutex mu;
    std::vector<PendingPir> pending;
  };

  // Pins the catalog's current epoch and returns the (possibly cached)
  // engine bundle for it. Never regresses to an older epoch, and prefers
  // an already-installed bundle for the same epoch (its lazy PIR matrices
  // are warm). Never blocks on a catalog build.
  std::shared_ptr<const EpochEngines> ResolveEngines() const;
  std::shared_ptr<const EpochEngines> BuildEngines(
      std::shared_ptr<const index::IndexEpoch> snapshot) const;

  // `collector`, when non-null, makes kPirQuery requests defer their answer
  // compute into it (outcome.deferred set; `slot` names the response index
  // the deferred answer must fill). AnswerDeferredPir then answers every
  // parked query in shared sweeps and writes the finished frames into
  // `responses`.
  RequestOutcome ProcessOne(const EpochEngines& engines,
                            const std::vector<uint8_t>& request,
                            PirBatchCollector* collector = nullptr,
                            size_t slot = 0);
  void AnswerDeferredPir(const EpochEngines& engines,
                         PirBatchCollector& collector,
                         std::vector<std::vector<uint8_t>>* responses);

  // Admission control: grants up to `want` in-flight slots (all of them
  // when max_inflight is 0); ReleaseInflight returns what was granted.
  // BusyOutcome is the typed kBusy response for a shed request.
  size_t AcquireInflight(size_t want);
  void ReleaseInflight(size_t granted);
  static RequestOutcome BusyOutcome();

  // Folds one request's counters into totals_ under stats_mu_.
  void MergeDelta(const ServerStats& delta);

  RequestOutcome HandleHello(const EpochEngines& engines, const Frame& frame);
  RequestOutcome HandleQuery(const EpochEngines& engines, const Frame& frame);
  RequestOutcome HandlePirQuery(const EpochEngines& engines,
                                const Frame& frame,
                                PirBatchCollector* collector, size_t slot);
  RequestOutcome HandleTopK(const EpochEngines& engines, const Frame& frame);
  static RequestOutcome ErrorOutcome(uint64_t session_id,
                                     const Status& status);

  // The legacy-ctor shim: wraps the raw pointers in a frozen single-epoch
  // catalog replicating the old in-ctor topology decisions (slice config →
  // slice_count-way partition, shard_count → sharding, else monolithic).
  static std::unique_ptr<index::IndexCatalog> MakeShimCatalog(
      const index::InvertedIndex* index, const core::BucketOrganization* buckets,
      const storage::StorageLayout* layout,
      const EmbellishServerOptions& options);

  // Both public constructors delegate here.
  EmbellishServer(std::unique_ptr<index::IndexCatalog> owned_catalog,
                  index::IndexCatalog* catalog,
                  const EmbellishServerOptions& options, ThreadPool* pool);

  const EmbellishServerOptions options_;
  // Spawned only when the caller passed no pool but asked for intra-query
  // shard parallelism (shard_threads > 1 on a sharded server); pool_ then
  // points at it and the whole server shares it.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // caller's pool or owned_pool_; null => all serial

  // The live catalog; owned_catalog_ holds the legacy shim when the server
  // was constructed from raw pointers.
  std::unique_ptr<index::IndexCatalog> owned_catalog_;
  index::IndexCatalog* catalog_;  // owned_catalog_.get() or caller's

  const size_t bucket_count_;

  // Registered sessions: the key plus a registration epoch folded into
  // cache keys so a re-hello can never be answered with a cached response
  // encrypted under a superseded key; idle entries expire (see
  // session_idle_frames and server/session_table.h).
  SessionTable sessions_;

  // Logical clock for session idle tracking: handled frames.
  std::atomic<uint64_t> frame_clock_{0};

  // In-flight request count against options_.max_inflight.
  std::atomic<size_t> inflight_{0};

  // Current epoch's engine bundle; replaced (never mutated) when a batch
  // observes a newer epoch. Readers hold their own shared_ptr for the
  // batch, so replacement never invalidates an in-flight batch's engines.
  mutable std::mutex engines_mu_;
  mutable std::shared_ptr<const EpochEngines> engines_;

  ResponseCache cache_;

  mutable std::mutex stats_mu_;
  ServerStats totals_;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_EMBELLISH_SERVER_H_
