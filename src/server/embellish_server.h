// The EmbellishServer: a request loop tying SearchSession-style clients,
// the framed wire protocol, the inverted index, and the PR/PIR answer
// engines together.
//
// The paper's §5.2 evaluation measures per-query server cost; this subsystem
// is the piece that serves those queries as real traffic. Frames from many
// concurrent sessions are accepted, decoded, dispatched, and answered:
//
//   kHello     registers the session's Benaloh public key,
//   kQuery     runs Algorithm 4 over the inverted index (PR scheme),
//   kPirQuery  runs one Kushilevitz–Ostrovsky execution against one bucket.
//
// HandleBatch fans a batch of request frames out over the shared ThreadPool
// — parallelism comes from concurrent *requests*, so the per-request answer
// engines run serially (the pool must not be entered twice). A bucket-set
// keyed response cache (see response_cache.h) short-circuits the recurring
// co-bucket decoy sets that session-consistent embellishment produces.
//
// Every request produces a response frame; malformed or failing requests are
// answered with a kError frame carrying the transported Status, so one
// hostile client cannot take the loop down.

#ifndef EMBELLISH_SERVER_EMBELLISH_SERVER_H_
#define EMBELLISH_SERVER_EMBELLISH_SERVER_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/pir_retrieval.h"
#include "core/private_retrieval.h"
#include "server/framing.h"
#include "server/response_cache.h"

namespace embellish::server {

/// \brief Server construction knobs.
struct EmbellishServerOptions {
  /// Response-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 1024;

  /// Response-cache budget in bytes (keys embed request payloads, so entry
  /// sizes are attacker-controlled; this is the bound that holds).
  size_t cache_max_bytes = 64u << 20;

  /// Maximum registered sessions. Hellos for fresh session ids beyond this
  /// are refused (existing sessions may always re-register), bounding the
  /// memory a hostile client can pin with throwaway registrations.
  size_t max_sessions = 65536;

  /// Disk model charged per touched bucket (see storage/block_device.h).
  storage::DiskModelOptions disk;

  /// Algorithm 4 execution options.
  core::PrivateRetrievalServerOptions pr;
};

/// \brief Aggregate counters; a consistent snapshot is returned by stats().
struct ServerStats {
  uint64_t frames = 0;        ///< requests handled (including malformed)
  uint64_t hellos = 0;        ///< sessions (re-)registered
  uint64_t queries = 0;       ///< PR queries answered (cache hits included)
  uint64_t pir_queries = 0;   ///< PIR executions answered
  uint64_t errors = 0;        ///< kError responses produced
  uint64_t batches = 0;       ///< HandleBatch calls
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t uplink_bytes = 0;    ///< request frame bytes accepted
  uint64_t downlink_bytes = 0;  ///< response frame bytes produced
  double server_cpu_ms = 0;     ///< answer-engine CPU (cache hits cost none)
  double server_io_ms = 0;      ///< simulated disk model
};

/// \brief Multi-session batched answer server.
class EmbellishServer {
 public:
  /// \brief `layout` may be null (skips I/O accounting); `pool` may be null
  ///        (HandleBatch degrades to a serial loop). All pointers must
  ///        outlive the server.
  EmbellishServer(const index::InvertedIndex* index,
                  const core::BucketOrganization* buckets,
                  const storage::StorageLayout* layout,
                  const EmbellishServerOptions& options = {},
                  ThreadPool* pool = nullptr);

  /// \brief Handles one request frame; always returns a response frame
  ///        (kError on any failure, echoing the request's session id when it
  ///        was decodable).
  std::vector<uint8_t> HandleFrame(const std::vector<uint8_t>& request);

  /// \brief Handles a batch of request frames over the thread pool;
  ///        `response[i]` answers `requests[i]`. Responses are bit-identical
  ///        to handling each frame alone — batching changes only the clock.
  std::vector<std::vector<uint8_t>> HandleBatch(
      const std::vector<std::vector<uint8_t>>& requests);

  /// \brief Number of registered sessions.
  size_t session_count() const;

  ServerStats stats() const;

 private:
  // Per-request counters merged into totals_ under stats_mu_.
  struct RequestOutcome {
    std::vector<uint8_t> response;
    ServerStats delta;
  };

  // A registered session: the key plus a monotonically increasing
  // registration epoch. The epoch is folded into cache keys so a re-hello
  // (new public key, same session id) can never be answered with a cached
  // response encrypted under the superseded key.
  struct SessionEntry {
    std::shared_ptr<const crypto::BenalohPublicKey> pk;
    uint64_t epoch = 0;
  };

  RequestOutcome ProcessOne(const std::vector<uint8_t>& request);
  RequestOutcome HandleHello(const Frame& frame);
  RequestOutcome HandleQuery(const Frame& frame);
  RequestOutcome HandlePirQuery(const Frame& frame);
  static RequestOutcome ErrorOutcome(uint64_t session_id,
                                     const Status& status);

  SessionEntry FindSession(uint64_t session_id) const;

  const EmbellishServerOptions options_;
  const core::PrivateRetrievalServer pr_server_;  // built with a null pool
  const core::PirRetrievalServer pir_server_;     // built with a null pool
  ThreadPool* pool_;  // not owned; null => serial batches

  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<uint64_t, SessionEntry> sessions_;
  uint64_t next_epoch_ = 1;  // guarded by sessions_mu_

  // PirRetrievalServer's lazy matrix cache is not thread-safe; batch workers
  // serialize PIR answers through this mutex (PR queries run concurrently).
  mutable std::mutex pir_mu_;

  ResponseCache cache_;

  mutable std::mutex stats_mu_;
  ServerStats totals_;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_EMBELLISH_SERVER_H_
