#include "server/shard_coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <utility>

#include "common/strings.h"
#include "core/sharded_retrieval.h"
#include "server/async_frontend.h"
#include "server/io_util.h"
#include "core/wire_format.h"
#include "index/sharding.h"

namespace embellish::server {

namespace {

// The single-transport-per-slice constructor is sugar for one-replica
// groups.
std::vector<std::vector<ShardTransport*>> SingleReplicaGroups(
    std::vector<ShardTransport*> transports) {
  std::vector<std::vector<ShardTransport*>> groups;
  groups.reserve(transports.size());
  for (ShardTransport* t : transports) {
    groups.push_back(std::vector<ShardTransport*>{t});
  }
  return groups;
}

}  // namespace

ShardCoordinator::ShardCoordinator(std::vector<ShardTransport*> transports,
                                   const ShardCoordinatorOptions& options,
                                   ThreadPool* pool)
    : ShardCoordinator(SingleReplicaGroups(std::move(transports)), options,
                       pool) {}

ShardCoordinator::ShardCoordinator(
    std::vector<std::vector<ShardTransport*>> replica_groups,
    const ShardCoordinatorOptions& options, ThreadPool* pool)
    : replicas_(std::move(replica_groups)),
      options_(options),
      // No caller pool, but overlapped fan-out requested: spawn an owned
      // executor of the requested width (see fanout_threads).
      owned_pool_(pool == nullptr && options.fanout_threads > 1 &&
                          replicas_.size() > 1
                      ? std::make_unique<ThreadPool>(options.fanout_threads)
                      : nullptr),
      pool_(pool != nullptr ? pool : owned_pool_.get()),
      probe_rng_(options.probe_seed),
      epoch_(options.epoch),
      sessions_(options.max_sessions, options.session_idle_frames),
      cache_(options.cache_capacity, options.cache_max_bytes) {
  transport_mu_.reserve(replicas_.size());
  replica_failures_.reserve(replicas_.size());
  for (const auto& group : replicas_) {
    transport_mu_.emplace_back();
    replica_failures_.emplace_back();
    for (size_t r = 0; r < group.size(); ++r) {
      transport_mu_.back().push_back(std::make_unique<std::mutex>());
      replica_failures_.back().push_back(
          std::make_unique<std::atomic<uint32_t>>(0));
    }
  }
}

ShardCoordinator::~ShardCoordinator() {
  // Async attempts orphaned by an answered trip (late hedge losers,
  // abandoned failovers) complete later on the transports' loop threads and
  // touch breakers/counters; they must all land before members die.
  std::unique_lock<std::mutex> lock(async_drain_mu_);
  async_drain_cv_.wait(lock, [this] { return async_outstanding_ == 0; });
}

size_t ShardCoordinator::session_count() const { return sessions_.size(); }

CoordinatorStats ShardCoordinator::stats() const {
  CoordinatorStats snapshot;
  snapshot.frames = counters_.frames.load(std::memory_order_relaxed);
  snapshot.hellos = counters_.hellos.load(std::memory_order_relaxed);
  snapshot.queries = counters_.queries.load(std::memory_order_relaxed);
  snapshot.pir_queries =
      counters_.pir_queries.load(std::memory_order_relaxed);
  snapshot.topk_queries =
      counters_.topk_queries.load(std::memory_order_relaxed);
  snapshot.errors = counters_.errors.load(std::memory_order_relaxed);
  snapshot.shard_trips =
      counters_.shard_trips.load(std::memory_order_relaxed);
  snapshot.shard_failures =
      counters_.shard_failures.load(std::memory_order_relaxed);
  snapshot.sessions_expired = sessions_.expired_total();
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  snapshot.retries = counters_.retries.load(std::memory_order_relaxed);
  snapshot.hedges_fired =
      counters_.hedges_fired.load(std::memory_order_relaxed);
  snapshot.hedge_wins = counters_.hedge_wins.load(std::memory_order_relaxed);
  snapshot.failovers = counters_.failovers.load(std::memory_order_relaxed);
  snapshot.shed = counters_.shed.load(std::memory_order_relaxed);
  snapshot.degraded_answers =
      counters_.degraded_answers.load(std::memory_order_relaxed);
  snapshot.epoch_swaps =
      counters_.epoch_swaps.load(std::memory_order_relaxed);
  snapshot.blocking_io_trips =
      counters_.blocking_io_trips.load(std::memory_order_relaxed);
  snapshot.async_io_trips =
      counters_.async_io_trips.load(std::memory_order_relaxed);
  snapshot.trip_micros = counters_.trip_micros.load(std::memory_order_relaxed);
  return snapshot;
}

std::vector<uint8_t> ShardCoordinator::ErrorFrame(uint64_t session_id,
                                                  const Status& status) {
  Count(&AtomicStats::errors);
  return EncodeFrame(FrameKind::kError, session_id, EncodeError(status));
}

std::vector<uint8_t> ShardCoordinator::PassThroughError(
    uint64_t session_id, const std::vector<uint8_t>& payload) {
  Count(&AtomicStats::errors);
  return EncodeFrame(FrameKind::kError, session_id, payload);
}

std::vector<uint8_t> ShardCoordinator::BuildShardRequest(
    size_t shard, uint64_t seq, const std::vector<uint8_t>& inner) {
  return EncodeFrame(
      FrameKind::kShardRequest, 0,
      EncodeShardEnvelope(shard, epoch_.load(std::memory_order_acquire), seq,
                          inner));
}

Result<Frame> ShardCoordinator::ReplicaTrip(
    size_t shard, size_t replica, const std::vector<uint8_t>& inner) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> request = BuildShardRequest(shard, seq, inner);
  Count(&AtomicStats::shard_trips);
  ShardTransport* transport = replicas_[shard][replica];
  // A multiplexed transport does its socket I/O on the loop thread even for
  // this blocking-convenience call (the caller merely awaits a latch), so
  // only a genuinely blocking channel counts a worker parked on I/O.
  Count(transport->SupportsAsyncSubmit() ? &AtomicStats::async_io_trips
                                         : &AtomicStats::blocking_io_trips);

  const auto start = std::chrono::steady_clock::now();
  Result<std::vector<uint8_t>> response = [&] {
    if (transport->SupportsAsyncSubmit()) {
      // A multiplexed transport is thread-safe and interleaves in-flight
      // round trips itself; serializing it here would flatten them.
      return transport->RoundTrip(request);
    }
    // Plain blocking channels: one round trip at a time.
    std::lock_guard<std::mutex> lock(*transport_mu_[shard][replica]);
    return transport->RoundTrip(request);
  }();
  counters_.trip_micros.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count(),
      std::memory_order_relaxed);
  return SettleReplicaTrip(shard, replica, seq, std::move(response));
}

Result<Frame> ShardCoordinator::SettleReplicaTrip(
    size_t shard, size_t replica, uint64_t seq,
    Result<std::vector<uint8_t>> response) {
  std::atomic<uint32_t>& breaker = *replica_failures_[shard][replica];
  auto fail = [&](Status status) -> Result<Frame> {
    Count(&AtomicStats::shard_failures);
    breaker.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  if (!response.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu transport: %s", shard,
        response.status().ToString().c_str())));
  }
  auto outer = DecodeFrame(*response);
  if (!outer.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu returned a corrupt frame: %s", shard,
        outer.status().ToString().c_str())));
  }
  if (outer->kind == FrameKind::kError) {
    // An error outside any envelope: the endpoint rejected the envelope
    // itself (fencing, misrouting, corruption on its side of the wire).
    Status transported;
    if (!DecodeError(outer->payload, &transported).ok()) {
      transported = Status::Corruption("undecodable shard error payload");
    }
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu refused the request: %s", shard,
        transported.ToString().c_str())));
  }
  if (outer->kind != FrameKind::kShardResponse) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu answered with frame kind %u, not a shard response", shard,
        static_cast<unsigned>(outer->kind))));
  }
  auto envelope = DecodeShardEnvelope(outer->payload);
  if (!envelope.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu response envelope: %s", shard,
        envelope.status().ToString().c_str())));
  }
  // The echo is what catches misrouted, stale-coordinator and reordered
  // responses before any bytes reach a merge. The epoch is read at
  // validation time, not send time: a response that raced an AdvanceEpoch
  // cutover carries the superseded epoch and is refused here — the fence
  // that keeps pre-cutover answers out of post-cutover merges.
  const uint64_t fencing_epoch = epoch_.load(std::memory_order_acquire);
  if (envelope->shard_id != shard || envelope->epoch != fencing_epoch ||
      envelope->seq != seq) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu response envelope mismatch (shard %zu epoch %llu seq "
        "%llu; expected %zu/%llu/%llu)",
        shard, envelope->shard_id,
        static_cast<unsigned long long>(envelope->epoch),
        static_cast<unsigned long long>(envelope->seq), shard,
        static_cast<unsigned long long>(fencing_epoch),
        static_cast<unsigned long long>(seq))));
  }
  auto inner_frame = DecodeFrame(envelope->inner);
  if (!inner_frame.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu inner frame: %s", shard,
        inner_frame.status().ToString().c_str())));
  }
  // Any validated response closes the replica's breaker: the channel works
  // end to end, even if the shard answered an application-level error.
  breaker.store(0, std::memory_order_relaxed);
  return inner_frame;
}

std::vector<size_t> ShardCoordinator::ReplicaOrder(size_t shard) {
  const size_t n = replicas_[shard].size();
  std::vector<size_t> closed;
  std::vector<size_t> open;
  for (size_t r = 0; r < n; ++r) {
    const bool broken =
        options_.breaker_threshold > 0 &&
        replica_failures_[shard][r]->load(std::memory_order_relaxed) >=
            options_.breaker_threshold;
    (broken ? open : closed).push_back(r);
  }
  // Probe re-admission: occasionally front one circuit-open replica so a
  // healed replica sees traffic again and can close its breaker. When every
  // replica is open there is nothing to protect — just try them all.
  if (!open.empty() && !closed.empty() && options_.probe_probability > 0) {
    bool probe;
    {
      std::lock_guard<std::mutex> lock(probe_mu_);
      probe = probe_rng_.Bernoulli(options_.probe_probability);
    }
    if (probe) {
      closed.insert(closed.begin(), open.front());
      open.erase(open.begin());
    }
  }
  closed.insert(closed.end(), open.begin(), open.end());
  return closed;
}

void ShardCoordinator::AsyncReplicaTrip(
    size_t shard, size_t replica, const std::vector<uint8_t>& inner,
    std::function<void(Result<Frame>)> done) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> request = BuildShardRequest(shard, seq, inner);
  Count(&AtomicStats::shard_trips);
  Count(&AtomicStats::async_io_trips);
  {
    std::lock_guard<std::mutex> lock(async_drain_mu_);
    ++async_outstanding_;
  }
  const auto start = std::chrono::steady_clock::now();
  replicas_[shard][replica]->SubmitRoundTrip(
      request, [this, shard, replica, seq, start, done = std::move(done)](
                   Result<std::vector<uint8_t>> response) {
        counters_.trip_micros.fetch_add(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count(),
            std::memory_order_relaxed);
        done(SettleReplicaTrip(shard, replica, seq, std::move(response)));
        std::lock_guard<std::mutex> lock(async_drain_mu_);
        if (--async_outstanding_ == 0) async_drain_cv_.notify_all();
      });
}

bool ShardCoordinator::AsyncCapable(size_t shard) const {
  if (replicas_[shard].empty()) return false;
  for (ShardTransport* t : replicas_[shard]) {
    if (!t->SupportsAsyncSubmit()) return false;
  }
  return true;
}

bool ShardCoordinator::AllAsyncCapable() const {
  if (replicas_.empty()) return false;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    if (!AsyncCapable(s)) return false;
  }
  return true;
}

namespace {
// Attempt provenance for the async fan-out's stats accounting.
enum AttemptKind : int {
  kPrimaryAttempt = 0,
  kHedgeAttempt = 1,
  kFailoverAttempt = 2,
};
}  // namespace

std::vector<Result<Frame>> ShardCoordinator::AsyncFanOutShards(
    const std::vector<size_t>& shards, const std::vector<uint8_t>& inner) {
  // One logical trip per slice, all primaries submitted before anything is
  // awaited: N round trips in flight, zero threads parked on sockets. The
  // per-trip failover walk and the hedged duplicate reproduce the blocking
  // path's semantics — same ReplicaOrder, same attempt budget, same "every
  // attempt has its own seq" isolation — but failovers resubmit from the
  // completion callback and hedges fire from this awaiting thread at their
  // monotonic deadlines (async hedging needs no executor to race on).
  struct Trip {
    size_t shard = 0;
    std::vector<size_t> order;
    size_t next_idx = 0;  // next failover candidate in `order`
    size_t budget = 0;
    size_t outstanding = 0;  // attempts in flight
    bool done = false;
    bool hedge_armed = false;  // a hedge may still fire at hedge_deadline_ms
    int64_t hedge_deadline_ms = 0;
    bool primary_failed = false;
    Result<Frame> result{Status::Internal("shard not contacted")};
  };
  struct Fan {
    std::mutex mu;
    std::condition_variable cv;
    size_t open = 0;
    std::vector<Trip> trips;
  };
  auto fan = std::make_shared<Fan>();
  fan->trips.resize(shards.size());

  const bool hedging = options_.hedge_delay_ms >= 0;
  const int64_t hedge_deadline = MonotonicMillis() + options_.hedge_delay_ms;
  for (size_t i = 0; i < shards.size(); ++i) {
    Trip& trip = fan->trips[i];
    trip.shard = shards[i];
    trip.order = ReplicaOrder(trip.shard);
    if (trip.order.empty()) {
      Count(&AtomicStats::shard_failures);
      trip.done = true;
      trip.result = Status::Unavailable(
          StringPrintf("slice %zu has no replica transports", trip.shard));
      continue;
    }
    trip.budget = options_.max_attempts == 0
                      ? trip.order.size()
                      : std::min(options_.max_attempts, trip.order.size());
    trip.next_idx = 1;
    trip.hedge_armed = hedging && trip.budget >= 2;
    trip.hedge_deadline_ms = hedge_deadline;
    ++fan->open;
  }

  // submit/on_result recurse into each other (a failover submission's
  // completion settles through on_result again), so both live behind
  // shared_ptrs the completions capture — but on_result holds submit only
  // weakly, or the mutual capture would be a shared_ptr cycle that leaks
  // the fan. The weak lock cannot fail when it matters: a resubmission
  // only happens while its trip is open, and open > 0 pins this function
  // (whose local `submit` owns the target) in the await loop below.
  // `inner` is captured by reference for the same reason: the caller
  // cannot return — and pop its frame — until open == 0.
  auto submit =
      std::make_shared<std::function<void(size_t, int, size_t)>>();
  auto on_result =
      std::make_shared<std::function<void(size_t, int, Result<Frame>)>>();
  std::weak_ptr<std::function<void(size_t, int, size_t)>> weak_submit =
      submit;

  *submit = [this, fan, on_result, &inner](size_t t, int kind,
                                           size_t replica) {
    AsyncReplicaTrip(fan->trips[t].shard, replica, inner,
                     [on_result, t, kind](Result<Frame> r) {
                       (*on_result)(t, kind, std::move(r));
                     });
  };

  *on_result = [this, fan, weak_submit](size_t t, int kind,
                                        Result<Frame> r) {
    size_t resubmit_replica = 0;
    bool resubmit = false;
    {
      std::lock_guard<std::mutex> lock(fan->mu);
      Trip& trip = fan->trips[t];
      --trip.outstanding;
      if (trip.done) return;  // late loser: breaker already settled, drop
      if (r.ok()) {
        if (kind == kHedgeAttempt) {
          Count(&AtomicStats::hedge_wins);
          if (trip.primary_failed) Count(&AtomicStats::failovers);
        } else if (kind == kFailoverAttempt) {
          Count(&AtomicStats::failovers);
        }
        trip.done = true;
        trip.result = std::move(r);
        --fan->open;
        fan->cv.notify_all();
        return;
      }
      if (kind == kPrimaryAttempt) trip.primary_failed = true;
      trip.result = std::move(r);  // latest failure, surfaced if all fail
      if (trip.next_idx < trip.budget) {
        resubmit_replica = trip.order[trip.next_idx++];
        ++trip.outstanding;
        resubmit = true;
        Count(&AtomicStats::retries);
      } else {
        trip.hedge_armed = false;  // nothing left for a hedge to try
        if (trip.outstanding == 0) {
          trip.done = true;
          --fan->open;
          fan->cv.notify_all();
        }
      }
    }
    // Outside fan->mu: the submission may complete inline (e.g. a
    // disconnected transport fails it on the spot) and re-enter on_result.
    if (resubmit) {
      if (auto s = weak_submit.lock()) (*s)(t, kFailoverAttempt, resubmit_replica);
    }
  };

  for (size_t i = 0; i < fan->trips.size(); ++i) {
    Trip& trip = fan->trips[i];
    if (trip.done) continue;
    {
      std::lock_guard<std::mutex> lock(fan->mu);
      ++trip.outstanding;
    }
    (*submit)(i, kPrimaryAttempt, trip.order[0]);
  }

  // Await all trips, firing due hedges: this is the ONLY blocked thread of
  // the whole fan-out.
  std::unique_lock<std::mutex> lock(fan->mu);
  while (fan->open > 0) {
    int64_t next_deadline = INT64_MAX;
    for (const Trip& trip : fan->trips) {
      if (!trip.done && trip.hedge_armed) {
        next_deadline = std::min(next_deadline, trip.hedge_deadline_ms);
      }
    }
    if (next_deadline == INT64_MAX) {
      fan->cv.wait(lock);
      continue;
    }
    const int64_t now = MonotonicMillis();
    if (now < next_deadline) {
      fan->cv.wait_for(lock, std::chrono::milliseconds(next_deadline - now));
      continue;  // re-evaluate: trips may have landed meanwhile
    }
    std::vector<std::pair<size_t, size_t>> fires;  // (trip, replica)
    for (size_t i = 0; i < fan->trips.size(); ++i) {
      Trip& trip = fan->trips[i];
      if (trip.done || !trip.hedge_armed || trip.hedge_deadline_ms > now) {
        continue;
      }
      trip.hedge_armed = false;
      if (trip.next_idx < trip.budget) {
        const size_t replica = trip.order[trip.next_idx++];
        ++trip.outstanding;
        Count(&AtomicStats::hedges_fired);
        fires.emplace_back(i, replica);
      }
    }
    lock.unlock();
    for (const auto& [t, replica] : fires) {
      (*submit)(t, kHedgeAttempt, replica);
    }
    lock.lock();
  }

  std::vector<Result<Frame>> out;
  out.reserve(fan->trips.size());
  for (Trip& trip : fan->trips) out.push_back(std::move(trip.result));
  return out;
}

std::vector<std::vector<Result<Frame>>>
ShardCoordinator::AsyncFanOutAllReplicas(const std::vector<uint8_t>& inner) {
  // Registration traffic wants an answer from EVERY replica, so there is no
  // failover or hedging — just every (slice, replica) attempt in flight at
  // once and one awaiting thread.
  struct Fan {
    std::mutex mu;
    std::condition_variable cv;
    size_t open = 0;
    std::vector<std::vector<Result<Frame>>> out;
  };
  auto fan = std::make_shared<Fan>();
  fan->out.resize(replicas_.size());
  size_t total = 0;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    fan->out[s].assign(replicas_[s].size(),
                       Result<Frame>(Status::Internal("replica not contacted")));
    total += replicas_[s].size();
  }
  fan->open = total;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    for (size_t r = 0; r < replicas_[s].size(); ++r) {
      AsyncReplicaTrip(s, r, inner, [fan, s, r](Result<Frame> result) {
        std::lock_guard<std::mutex> lock(fan->mu);
        fan->out[s][r] = std::move(result);
        if (--fan->open == 0) fan->cv.notify_all();
      });
    }
  }
  std::unique_lock<std::mutex> lock(fan->mu);
  fan->cv.wait(lock, [&fan] { return fan->open == 0; });
  return std::move(fan->out);
}

ShardCoordinator::HedgeOutcome ShardCoordinator::HedgedTrip(
    size_t shard, size_t primary, size_t hedge,
    const std::vector<uint8_t>& inner) {
  struct Race {
    std::mutex m;
    std::condition_variable cv;
    bool primary_done = false;
    bool hedge_fired = false;
    bool hedge_done = false;
    int finishes = 0;
    int primary_rank = 0;
    int hedge_rank = 0;
    Result<Frame> primary_result{Status::Internal("primary not run")};
    Result<Frame> hedge_result{Status::Internal("hedge not run")};
  } race;

  // Two 1-wide chunks: the primary trip and the hedge watcher. On a pool
  // with free workers they run concurrently; with none, the caller runs
  // them back to back and the watcher degrades into an immediate
  // retry-on-failure (the primary is already done when it checks). Each
  // trip draws its own envelope seq, so the loser's response cannot be
  // mistaken for the winner's. Caveat: ParallelFor joins both chunks, so a
  // hedge that is still in flight when the primary lands extends the trip
  // by its transport timeout at worst — the price of hedging over blocking
  // transports (the async submit path doesn't pay it: both trips ride the
  // event loop and the loser is abandoned to the orphan counter).
  pool_->ParallelFor(0, 2, /*min_grain=*/1, [&](size_t begin, size_t end) {
    for (size_t task = begin; task < end; ++task) {
      if (task == 0) {
        Result<Frame> r = ReplicaTrip(shard, primary, inner);
        std::lock_guard<std::mutex> lock(race.m);
        race.primary_result = std::move(r);
        race.primary_done = true;
        race.primary_rank = ++race.finishes;
        race.cv.notify_all();
      } else {
        bool fire;
        {
          std::unique_lock<std::mutex> lock(race.m);
          race.cv.wait_for(lock,
                           std::chrono::milliseconds(options_.hedge_delay_ms),
                           [&] { return race.primary_done; });
          // Fire on a slow primary (still out past the delay) or a failed
          // one (immediate failover); stand down on a landed success.
          fire = !(race.primary_done && race.primary_result.ok());
          race.hedge_fired = fire;
        }
        if (!fire) continue;
        Result<Frame> r = ReplicaTrip(shard, hedge, inner);
        std::lock_guard<std::mutex> lock(race.m);
        race.hedge_result = std::move(r);
        race.hedge_done = true;
        race.hedge_rank = ++race.finishes;
      }
    }
  });

  HedgeOutcome out;
  out.hedge_fired = race.hedge_fired;
  const bool primary_ok = race.primary_result.ok();
  const bool hedge_ok = race.hedge_done && race.hedge_result.ok();
  if (primary_ok && (!hedge_ok || race.primary_rank < race.hedge_rank)) {
    out.result = std::move(race.primary_result);
  } else if (hedge_ok) {
    out.result = std::move(race.hedge_result);
    out.hedge_won = true;
    out.primary_failed = !primary_ok;
  } else {
    // Both attempts failed; surface the primary's status deterministically.
    out.result = std::move(race.primary_result);
    out.primary_failed = true;
  }
  return out;
}

Result<Frame> ShardCoordinator::ShardRoundTrip(
    size_t shard, const std::vector<uint8_t>& inner) {
  if (AsyncCapable(shard)) {
    // Submit-and-await even for a single slice: the PIR path then pins no
    // worker on the socket either, and failover/hedging run identically.
    std::vector<Result<Frame>> out =
        AsyncFanOutShards(std::vector<size_t>{shard}, inner);
    return std::move(out[0]);
  }
  const std::vector<size_t> order = ReplicaOrder(shard);
  if (order.empty()) {
    Count(&AtomicStats::shard_failures);
    return Status::Unavailable(
        StringPrintf("slice %zu has no replica transports", shard));
  }
  const size_t budget = options_.max_attempts == 0
                            ? order.size()
                            : std::min(options_.max_attempts, order.size());

  size_t idx = 0;  // next candidate in `order`
  Result<Frame> last(Status::Internal("no replica attempted"));

  // First attempt — hedged when enabled and a second candidate and the
  // budget allow it (hedging needs a pool to race on).
  if (options_.hedge_delay_ms >= 0 && pool_ != nullptr && budget >= 2) {
    HedgeOutcome h = HedgedTrip(shard, order[0], order[1], inner);
    idx = h.hedge_fired ? 2 : 1;
    if (h.hedge_fired) Count(&AtomicStats::hedges_fired);
    if (h.result.ok()) {
      if (h.hedge_won) {
        Count(&AtomicStats::hedge_wins);
        if (h.primary_failed) Count(&AtomicStats::failovers);
      }
      return h.result;
    }
    last = std::move(h.result);
  } else {
    last = ReplicaTrip(shard, order[0], inner);
    idx = 1;
    if (last.ok()) return last;
  }

  // Sequential failover over the remaining candidates.
  while (idx < budget) {
    Count(&AtomicStats::retries);
    last = ReplicaTrip(shard, order[idx], inner);
    ++idx;
    if (last.ok()) {
      Count(&AtomicStats::failovers);
      return last;
    }
  }
  return last;
}

std::vector<Result<Frame>> ShardCoordinator::FanOut(
    const std::vector<uint8_t>& inner) {
  const size_t shards = replicas_.size();
  if (AllAsyncCapable()) {
    std::vector<size_t> all(shards);
    for (size_t s = 0; s < shards; ++s) all[s] = s;
    return AsyncFanOutShards(all, inner);
  }
  std::vector<Result<Frame>> out(
      shards, Result<Frame>(Status::Internal("shard not contacted")));
  // The round trips overlap as executor tasks (each one blocks on its
  // transport, so the fanout_threads cap is what bounds how many workers
  // one request can pin on I/O waits). The caller participates too, so a
  // fully-busy pool degrades to the sequential loop, never a stall.
  index::ForEachShard(pool_, shards, [&](size_t s) {
    out[s] = ShardRoundTrip(s, inner);
  }, options_.fanout_threads);
  return out;
}

std::vector<std::vector<Result<Frame>>> ShardCoordinator::FanOutAllReplicas(
    const std::vector<uint8_t>& inner) {
  if (AllAsyncCapable()) return AsyncFanOutAllReplicas(inner);
  const size_t shards = replicas_.size();
  std::vector<std::vector<Result<Frame>>> out(shards);
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t s = 0; s < shards; ++s) {
    out[s].assign(replicas_[s].size(),
                  Result<Frame>(Status::Internal("replica not contacted")));
    for (size_t r = 0; r < replicas_[s].size(); ++r) pairs.emplace_back(s, r);
  }
  index::ForEachShard(pool_, pairs.size(), [&](size_t i) {
    out[pairs[i].first][pairs[i].second] =
        ReplicaTrip(pairs[i].first, pairs[i].second, inner);
  }, options_.fanout_threads);
  return out;
}

Status ShardCoordinator::Handshake() {
  // Lock-free fast path: once handshaken, per-request checks cost one
  // acquire load instead of contending a mutex across batch workers.
  if (handshaken_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(handshake_mu_);
  if (handshaken_.load(std::memory_order_relaxed)) return Status::OK();
  if (replicas_.empty()) {
    return Status::InvalidArgument("coordinator has no shard transports");
  }
  size_t bucket_count = 0;
  bool bucket_known = false;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    if (replicas_[s].empty()) {
      return Status::InvalidArgument(
          StringPrintf("slice %zu has no replica transports", s));
    }
    // Ping every replica: a slice is usable if at least one answers, and
    // every replica that does answer must advertise the same topology. A
    // misconfigured replica (wrong shard count, divergent buckets) is a
    // deployment error worth failing loudly on, not failing over past.
    bool slice_ok = false;
    Status first_failure;
    for (size_t r = 0; r < replicas_[s].size(); ++r) {
      auto inner = ReplicaTrip(s, r, {});
      if (!inner.ok()) {
        if (first_failure.ok()) first_failure = inner.status();
        continue;
      }
      if (inner->kind != FrameKind::kHelloOk) {
        return Status::Unavailable(StringPrintf(
            "shard %zu answered the ping with frame kind %u", s,
            static_cast<unsigned>(inner->kind)));
      }
      EMB_ASSIGN_OR_RETURN(HelloOkPayload topology,
                           DecodeHelloOk(inner->payload));
      // A coordinator shard must serve exactly one slice: PIR bucket fields
      // are rewritten to shard-local addresses, which an internally-sharded
      // server would misinterpret as shard-qualified.
      if (topology.shard_count != 1) {
        return Status::FailedPrecondition(StringPrintf(
            "shard %zu serves %zu shards; coordinator shards must each serve "
            "one slice", s, topology.shard_count));
      }
      if (!bucket_known) {
        bucket_count = topology.bucket_count;
        bucket_known = true;
      } else if (topology.bucket_count != bucket_count) {
        return Status::FailedPrecondition(StringPrintf(
            "shard %zu advertises %zu buckets but shard 0 advertises %zu — "
            "shards must share one bucket organization",
            s, topology.bucket_count, bucket_count));
      }
      slice_ok = true;
    }
    if (!slice_ok) {
      return first_failure.ok()
                 ? Status::Unavailable(StringPrintf(
                       "slice %zu: no replica answered the ping", s))
                 : first_failure;
    }
  }
  bucket_count_.store(bucket_count, std::memory_order_release);
  handshaken_.store(true, std::memory_order_release);
  return Status::OK();
}

Status ShardCoordinator::AdvanceEpoch() {
  std::lock_guard<std::mutex> cutover(cutover_mu_);
  // Bump first: from this instant every in-flight response stamped with
  // the superseded epoch fails its envelope echo in SettleReplicaTrip and
  // can never be merged. Requests racing the bump see a typed
  // kUnavailable and retry — fencing trades a transient error for the
  // impossibility of merging pre-cutover bytes.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  handshaken_.store(false, std::memory_order_release);
  counters_.epoch_swaps.fetch_add(1, std::memory_order_relaxed);
  // Re-verify the (possibly restarted or re-sharded) slice topology under
  // the new epoch before any request traffic relies on it.
  EMB_RETURN_NOT_OK(Handshake());
  // Re-push slice state: a cutover that restarted a slice server (or swapped
  // in a resharded deployment) wiped its session table; re-offering every
  // registered key keeps established sessions working without a
  // client-visible re-hello. ReRegisterOnShards would also repair these
  // lazily per session, but the eager push keeps the cutover's cost off the
  // first post-cutover query of every session.
  for (const auto& [session_id, pk] : sessions_.Snapshot()) {
    if (!ReRegisterOnShards(session_id, *pk)) {
      return Status::Unavailable(StringPrintf(
          "session %llu could not be re-registered on every slice after the "
          "epoch cutover",
          static_cast<unsigned long long>(session_id)));
    }
  }
  return Status::OK();
}

size_t ShardCoordinator::AcquireInflight(size_t want) {
  if (options_.max_inflight == 0) return want;
  size_t current = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t room = options_.max_inflight > current
                            ? options_.max_inflight - current
                            : 0;
    const size_t grant = std::min(want, room);
    if (grant == 0) return 0;
    if (inflight_.compare_exchange_weak(current, current + grant,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return grant;
    }
  }
}

void ShardCoordinator::ReleaseInflight(size_t granted) {
  if (options_.max_inflight == 0 || granted == 0) return;
  inflight_.fetch_sub(granted, std::memory_order_acq_rel);
}

std::vector<uint8_t> ShardCoordinator::BusyFrame() {
  Count(&AtomicStats::shed);
  Count(&AtomicStats::frames);
  return ErrorFrame(
      0, Status::Busy("coordinator in-flight budget exhausted; request shed"));
}

Result<std::unique_ptr<AsyncFrontEnd>> ShardCoordinator::ServeAsync(
    int listen_fd, EventLoop* loop) {
  return ServeAsync(listen_fd, loop, AsyncFrontEndOptions{});
}

Result<std::unique_ptr<AsyncFrontEnd>> ShardCoordinator::ServeAsync(
    int listen_fd, EventLoop* loop, const AsyncFrontEndOptions& options) {
  return AsyncFrontEnd::Create(
      listen_fd, loop,
      [this](const std::vector<std::vector<uint8_t>>& requests) {
        return HandleBatch(requests);
      },
      options);
}

std::vector<uint8_t> ShardCoordinator::HandleFrame(
    const std::vector<uint8_t>& request) {
  if (AcquireInflight(1) == 0) return BusyFrame();
  std::vector<uint8_t> response = ProcessOne(request);
  ReleaseInflight(1);
  Count(&AtomicStats::frames);
  return response;
}

std::vector<std::vector<uint8_t>> ShardCoordinator::HandleBatch(
    const std::vector<std::vector<uint8_t>>& requests) {
  std::vector<std::vector<uint8_t>> responses(requests.size());
  // Admission is reserved for the whole batch up front: the first `granted`
  // requests are processed, the rest are shed with typed kBusy frames — a
  // deterministic suffix, so the client knows exactly which to resend.
  const size_t granted = AcquireInflight(requests.size());
  auto handle_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (i < granted) {
        responses[i] = ProcessOne(requests[i]);
        Count(&AtomicStats::frames);
      } else {
        responses[i] = BusyFrame();
      }
    }
  };
  if (pool_ != nullptr && requests.size() > 1) {
    pool_->ParallelFor(0, requests.size(), /*min_grain=*/1, handle_range);
  } else {
    handle_range(0, requests.size());
  }
  ReleaseInflight(granted);
  return responses;
}

std::vector<uint8_t> ShardCoordinator::ProcessOne(
    const std::vector<uint8_t>& request) {
  frame_clock_.fetch_add(1, std::memory_order_relaxed);
  auto frame = DecodeFrame(request);
  if (!frame.ok()) return ErrorFrame(0, frame.status());
  // Any decodable frame naming a registered session counts as activity for
  // the idle-expiry sweep, whatever its kind.
  sessions_.Touch(frame->session_id,
                  frame_clock_.load(std::memory_order_relaxed));
  // Lazy handshake: a coordinator that cannot reach its shards answers
  // every request with a typed error rather than wedging.
  Status handshake = Handshake();
  if (!handshake.ok()) return ErrorFrame(frame->session_id, handshake);
  switch (frame->kind) {
    case FrameKind::kHello:
      return HandleHello(*frame, request);
    case FrameKind::kQuery:
      return HandleQuery(*frame, request);
    case FrameKind::kPirQuery:
      return HandlePirQuery(*frame);
    case FrameKind::kTopKQuery:
      return HandleTopK(*frame, request);
    default:
      return ErrorFrame(frame->session_id,
                        Status::InvalidArgument(
                            "frame kind is not a request"));
  }
}

namespace {

// First failed round trip in shard order, for deterministic error frames.
const Status* FirstFailure(const std::vector<Result<Frame>>& responses) {
  for (const Result<Frame>& r : responses) {
    if (!r.ok()) return &r.status();
  }
  return nullptr;
}

// First inner kError in shard order (application-level shard errors pass
// through to the client unchanged).
const Frame* FirstInnerError(const std::vector<Result<Frame>>& responses) {
  for (const Result<Frame>& r : responses) {
    if (r.ok() && r->kind == FrameKind::kError) return &*r;
  }
  return nullptr;
}

}  // namespace

std::vector<uint8_t> ShardCoordinator::HandleHello(
    const Frame& frame, const std::vector<uint8_t>& request) {
  auto pk = DecodeHello(frame.payload);
  if (!pk.ok()) return ErrorFrame(frame.session_id, pk.status());
  // Register at the coordinator first (bounded + idle-expiring, same
  // semantics as the server's table). If the downstream fan-out then
  // fails, the registration stays: the self-healing path re-registers the
  // session on any shard that missed it when the next query arrives.
  if (!sessions_.Register(
          frame.session_id,
          std::make_shared<const crypto::BenalohPublicKey>(std::move(*pk)),
          frame_clock_.load(std::memory_order_relaxed))) {
    return ErrorFrame(frame.session_id,
                      Status::FailedPrecondition(
                          "session table full; hello refused"));
  }

  // Forward the hello verbatim to every replica of every slice (each
  // replica keeps its own session table; their per-shard epochs may
  // differ). A slice counts as registered when at least one replica acks —
  // a replica that was down re-learns the session through the self-healing
  // re-registration when it next serves a query for it.
  std::vector<std::vector<Result<Frame>>> groups = FanOutAllReplicas(request);
  const Status* first_failure = nullptr;
  const Frame* first_inner_error = nullptr;
  size_t first_unexpected = 0;
  bool saw_unexpected = false;
  bool any_slice_failed = false;
  for (size_t s = 0; s < groups.size(); ++s) {
    bool acked = false;
    const Status* slice_failure = nullptr;
    const Frame* slice_inner_error = nullptr;
    for (const Result<Frame>& r : groups[s]) {
      if (!r.ok()) {
        if (slice_failure == nullptr) slice_failure = &r.status();
      } else if (r->kind == FrameKind::kError) {
        if (slice_inner_error == nullptr) slice_inner_error = &*r;
      } else if (r->kind == FrameKind::kHelloOk &&
                 r->session_id == frame.session_id) {
        acked = true;
      }
    }
    if (acked) continue;
    any_slice_failed = true;
    if (slice_failure == nullptr && slice_inner_error == nullptr &&
        !saw_unexpected) {
      saw_unexpected = true;
      first_unexpected = s;
    }
    if (slice_failure != nullptr && first_failure == nullptr) {
      first_failure = slice_failure;
    }
    if (slice_inner_error != nullptr && first_inner_error == nullptr) {
      first_inner_error = slice_inner_error;
    }
  }
  if (any_slice_failed) {
    // Same precedence as the single-replica coordinator: a transport-level
    // failure anywhere outranks an application error, which outranks an
    // unexpected frame kind.
    if (first_failure != nullptr) {
      return ErrorFrame(frame.session_id, *first_failure);
    }
    if (first_inner_error != nullptr) {
      return PassThroughError(frame.session_id, first_inner_error->payload);
    }
    return ErrorFrame(frame.session_id,
                      Status::Unavailable(StringPrintf(
                          "shard %zu answered the hello with an unexpected "
                          "frame", first_unexpected)));
  }
  Count(&AtomicStats::hellos);
  // Advertise the *global* topology: the client addresses PIR executions
  // via shard-qualified bucket fields exactly as against the in-process
  // sharded server, and these bytes match that server's hello-ok.
  return EncodeFrame(FrameKind::kHelloOk, frame.session_id,
                     EncodeHelloOk(shard_count(), bucket_count()));
}

bool ShardCoordinator::ReRegisterOnShards(
    uint64_t session_id, const crypto::BenalohPublicKey& pk) {
  // EncodeHello reproduces the registration payload deterministically from
  // the coordinator's copy of the key, so a shard that lost the session —
  // restart, idle expiry on its side, or a raced re-hello that left it
  // holding a superseded key — converges back to the coordinator's view.
  std::vector<uint8_t> hello =
      EncodeFrame(FrameKind::kHello, session_id, EncodeHello(pk));
  // Offer the key to every replica (a replica that lost it may not be the
  // one the next trip lands on); the repair succeeds if every slice has at
  // least one replica holding the registration again.
  std::vector<std::vector<Result<Frame>>> groups = FanOutAllReplicas(hello);
  for (size_t s = 0; s < groups.size(); ++s) {
    bool acked = false;
    for (const Result<Frame>& r : groups[s]) {
      if (r.ok() && r->kind == FrameKind::kHelloOk &&
          r->session_id == session_id) {
        acked = true;
        break;
      }
    }
    if (!acked) return false;
  }
  return true;
}

std::vector<uint8_t> ShardCoordinator::HandleQuery(
    const Frame& frame, const std::vector<uint8_t>& request) {
  SessionTable::Entry session = sessions_.Find(frame.session_id);
  const std::shared_ptr<const crypto::BenalohPublicKey>& pk = session.pk;
  if (pk == nullptr) {
    return ErrorFrame(frame.session_id,
                      Status::FailedPrecondition(
                          "session has not sent a hello frame"));
  }

  // Upstream cache, keyed exactly like the server's PR entries — kind,
  // session, registration epoch, payload bytes. Session consistency makes a
  // recurring genuine-term set a byte-identical uplink, so a hit replays
  // the previously merged response without touching any shard; the epoch
  // component means a re-hello (new key, new epoch) can never be answered
  // with bytes merged under the superseded key. The coordinator's fencing
  // epoch doubles as the database-epoch key component: AdvanceEpoch is how
  // an index cutover reaches the coordinator, so responses merged against
  // the superseded index generation miss naturally after it.
  std::string cache_key;
  if (cache_.enabled()) {
    cache_key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                       frame.session_id, session.epoch,
                                       epoch(), frame.payload);
    std::vector<uint8_t> cached;
    if (cache_.Get(cache_key, &cached)) {
      Count(&AtomicStats::queries);
      return cached;
    }
  }

  // Up to two passes: if a shard turns out to have lost (or to hold a
  // superseded copy of) this session's registration — it answers
  // FailedPrecondition, or its partial result fails to decode under the
  // coordinator's key — the session is re-registered from the
  // coordinator's table and the query retried once. One stale shard must
  // not fail the session's queries forever.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool can_repair = attempt == 0;
    std::vector<Result<Frame>> responses = FanOut(request);
    // Transport-level failures (after each slice's failover walk): strict
    // mode fails the request on any one; partial mode records the slice as
    // missing and answers from the survivors — unless nothing survived.
    std::vector<uint32_t> missing;
    for (size_t s = 0; s < responses.size(); ++s) {
      if (!responses[s].ok()) missing.push_back(static_cast<uint32_t>(s));
    }
    if (!missing.empty() && (!options_.allow_partial_results ||
                             missing.size() == responses.size())) {
      return ErrorFrame(frame.session_id, *FirstFailure(responses));
    }
    if (const Frame* inner_error = FirstInnerError(responses)) {
      Status transported;
      const bool lost_session =
          DecodeError(inner_error->payload, &transported).ok() &&
          transported.IsFailedPrecondition();
      if (lost_session && can_repair &&
          ReRegisterOnShards(frame.session_id, *pk)) {
        continue;
      }
      return PassThroughError(frame.session_id, inner_error->payload);
    }

    std::vector<core::EncryptedResult> partial;
    partial.reserve(responses.size());
    Status decode_failure;
    for (size_t s = 0; s < responses.size() && decode_failure.ok(); ++s) {
      if (!responses[s].ok()) continue;  // missing slice (degraded mode)
      const Frame& inner = *responses[s];
      if (inner.kind != FrameKind::kResult ||
          inner.session_id != frame.session_id) {
        return ErrorFrame(frame.session_id,
                          Status::Unavailable(StringPrintf(
                              "shard %zu answered the query with an "
                              "unexpected frame", s)));
      }
      auto result = core::DecodeResult(inner.payload, *pk);
      if (!result.ok()) {
        decode_failure = Status::Unavailable(StringPrintf(
            "shard %zu result: %s", s, result.status().ToString().c_str()));
        break;
      }
      partial.push_back(std::move(*result));
    }
    if (!decode_failure.ok()) {
      if (can_repair && ReRegisterOnShards(frame.session_id, *pk)) continue;
      return ErrorFrame(frame.session_id, decode_failure);
    }

    // The PR 3 merge: shard-disjoint documents re-sorted into canonical
    // order, bit-identical to the in-process sharded server's response.
    // With missing slices the same merge over the survivors is still exact
    // over the surviving documents — disjointness means a dead slice
    // removes documents, it cannot corrupt the rest.
    core::EncryptedResult merged =
        core::MergeShardResults(std::move(partial));
    Count(&AtomicStats::queries);
    std::vector<uint8_t> payload_bytes = core::EncodeResult(merged, *pk);
    if (missing.empty()) {
      std::vector<uint8_t> response =
          EncodeFrame(FrameKind::kResult, frame.session_id, payload_bytes);
      if (cache_.enabled()) cache_.Put(cache_key, response);
      return response;
    }
    // Degraded answers are never cached: the key is the same as the full
    // answer's, and a healed fan-out must not keep replaying the partial
    // merge.
    Count(&AtomicStats::degraded_answers);
    return EncodeFrame(
        FrameKind::kDegradedResult, frame.session_id,
        EncodeDegradedResult(FrameKind::kResult, missing, payload_bytes));
  }
  return ErrorFrame(frame.session_id,
                    Status::Internal("unreachable query retry exit"));
}

std::vector<uint8_t> ShardCoordinator::HandlePirQuery(const Frame& frame) {
  auto payload = DecodePirQuery(frame.payload);
  if (!payload.ok()) return ErrorFrame(frame.session_id, payload.status());

  const size_t buckets = bucket_count();
  if (buckets == 0) {
    return ErrorFrame(frame.session_id,
                      Status::OutOfRange("server has no buckets"));
  }
  // Identical address validation (and messages) to the sharded
  // EmbellishServer: the saturation sentinel is rejected, oversized shard
  // indexes are rejected.
  if (payload->bucket == UINT32_MAX) {
    return ErrorFrame(
        frame.session_id,
        Status::OutOfRange("shard-qualified bucket field saturated"));
  }
  const size_t shard = payload->bucket / buckets;
  const size_t bucket = payload->bucket % buckets;
  if (shard >= shard_count()) {
    return ErrorFrame(frame.session_id,
                      Status::OutOfRange(
                          "shard-qualified bucket out of range"));
  }

  // Rewrite the bucket field to the shard-local address: the slice server
  // is monolithic over its slice.
  std::vector<uint8_t> inner = EncodeFrame(
      FrameKind::kPirQuery, frame.session_id,
      EncodePirQuery(bucket, payload->query));
  auto response = ShardRoundTrip(shard, inner);
  if (!response.ok()) {
    return ErrorFrame(frame.session_id, response.status());
  }
  if (response->kind == FrameKind::kError) {
    return PassThroughError(frame.session_id, response->payload);
  }
  if (response->kind != FrameKind::kPirResult ||
      response->session_id != frame.session_id) {
    return ErrorFrame(frame.session_id,
                      Status::Unavailable(StringPrintf(
                          "shard %zu answered the PIR query with an "
                          "unexpected frame", shard)));
  }
  Count(&AtomicStats::pir_queries);
  // The shard's response payload is already exactly what the in-process
  // sharded server would emit; re-frame it under the client's session id.
  return EncodeFrame(FrameKind::kPirResult, frame.session_id,
                     response->payload);
}

std::vector<uint8_t> ShardCoordinator::HandleTopK(
    const Frame& frame, const std::vector<uint8_t>& request) {
  auto query = DecodeTopKQuery(frame.payload);
  if (!query.ok()) return ErrorFrame(frame.session_id, query.status());

  std::vector<Result<Frame>> responses = FanOut(request);
  std::vector<uint32_t> missing;
  for (size_t s = 0; s < responses.size(); ++s) {
    if (!responses[s].ok()) missing.push_back(static_cast<uint32_t>(s));
  }
  if (!missing.empty() && (!options_.allow_partial_results ||
                           missing.size() == responses.size())) {
    return ErrorFrame(frame.session_id, *FirstFailure(responses));
  }
  if (const Frame* inner_error = FirstInnerError(responses)) {
    return PassThroughError(frame.session_id, inner_error->payload);
  }

  std::vector<std::vector<index::ScoredDoc>> partial;
  partial.reserve(responses.size());
  for (size_t s = 0; s < responses.size(); ++s) {
    if (!responses[s].ok()) continue;  // missing slice (degraded mode)
    const Frame& inner = *responses[s];
    if (inner.kind != FrameKind::kTopKResult ||
        inner.session_id != frame.session_id) {
      return ErrorFrame(frame.session_id,
                        Status::Unavailable(StringPrintf(
                            "shard %zu answered the top-k query with an "
                            "unexpected frame", s)));
    }
    auto docs = DecodeTopKResult(inner.payload);
    if (!docs.ok()) {
      return ErrorFrame(frame.session_id,
                        Status::Unavailable(StringPrintf(
                            "shard %zu top-k result: %s", s,
                            docs.status().ToString().c_str())));
    }
    partial.push_back(std::move(*docs));
  }

  std::vector<index::ScoredDoc> merged =
      index::MergeShardTopK(partial, query->k);
  Count(&AtomicStats::topk_queries);
  std::vector<uint8_t> payload_bytes = EncodeTopKResult(merged);
  if (missing.empty()) {
    return EncodeFrame(FrameKind::kTopKResult, frame.session_id,
                       payload_bytes);
  }
  // Best-effort top-k over the surviving slices: a missing slice can only
  // remove candidates, never reorder the survivors, and the marker tells
  // the client exactly which slices' documents are absent.
  Count(&AtomicStats::degraded_answers);
  return EncodeFrame(
      FrameKind::kDegradedResult, frame.session_id,
      EncodeDegradedResult(FrameKind::kTopKResult, missing, payload_bytes));
}

}  // namespace embellish::server
