#include "server/shard_coordinator.h"

#include <utility>

#include "common/strings.h"
#include "core/sharded_retrieval.h"
#include "core/wire_format.h"
#include "index/sharding.h"

namespace embellish::server {

ShardCoordinator::ShardCoordinator(std::vector<ShardTransport*> transports,
                                   const ShardCoordinatorOptions& options,
                                   ThreadPool* pool)
    : transports_(std::move(transports)),
      options_(options),
      // No caller pool, but overlapped fan-out requested: spawn an owned
      // executor of the requested width (see fanout_threads).
      owned_pool_(pool == nullptr && options.fanout_threads > 1 &&
                          transports_.size() > 1
                      ? std::make_unique<ThreadPool>(options.fanout_threads)
                      : nullptr),
      pool_(pool != nullptr ? pool : owned_pool_.get()),
      sessions_(options.max_sessions, options.session_idle_frames),
      cache_(options.cache_capacity, options.cache_max_bytes) {
  transport_mu_.reserve(transports_.size());
  for (size_t s = 0; s < transports_.size(); ++s) {
    transport_mu_.push_back(std::make_unique<std::mutex>());
  }
}

size_t ShardCoordinator::session_count() const { return sessions_.size(); }

CoordinatorStats ShardCoordinator::stats() const {
  CoordinatorStats snapshot;
  snapshot.frames = counters_.frames.load(std::memory_order_relaxed);
  snapshot.hellos = counters_.hellos.load(std::memory_order_relaxed);
  snapshot.queries = counters_.queries.load(std::memory_order_relaxed);
  snapshot.pir_queries =
      counters_.pir_queries.load(std::memory_order_relaxed);
  snapshot.topk_queries =
      counters_.topk_queries.load(std::memory_order_relaxed);
  snapshot.errors = counters_.errors.load(std::memory_order_relaxed);
  snapshot.shard_trips =
      counters_.shard_trips.load(std::memory_order_relaxed);
  snapshot.shard_failures =
      counters_.shard_failures.load(std::memory_order_relaxed);
  snapshot.sessions_expired = sessions_.expired_total();
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  return snapshot;
}

std::vector<uint8_t> ShardCoordinator::ErrorFrame(uint64_t session_id,
                                                  const Status& status) {
  Count(&AtomicStats::errors);
  return EncodeFrame(FrameKind::kError, session_id, EncodeError(status));
}

std::vector<uint8_t> ShardCoordinator::PassThroughError(
    uint64_t session_id, const std::vector<uint8_t>& payload) {
  Count(&AtomicStats::errors);
  return EncodeFrame(FrameKind::kError, session_id, payload);
}

Result<Frame> ShardCoordinator::ShardRoundTrip(
    size_t shard, const std::vector<uint8_t>& inner) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> request =
      EncodeFrame(FrameKind::kShardRequest, 0,
                  EncodeShardEnvelope(shard, options_.epoch, seq, inner));
  Count(&AtomicStats::shard_trips);
  auto fail = [&](Status status) -> Result<Frame> {
    Count(&AtomicStats::shard_failures);
    return status;
  };

  Result<std::vector<uint8_t>> response = [&] {
    // Transports are plain blocking channels; one round trip at a time.
    std::lock_guard<std::mutex> lock(*transport_mu_[shard]);
    return transports_[shard]->RoundTrip(request);
  }();
  if (!response.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu transport: %s", shard,
        response.status().ToString().c_str())));
  }
  auto outer = DecodeFrame(*response);
  if (!outer.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu returned a corrupt frame: %s", shard,
        outer.status().ToString().c_str())));
  }
  if (outer->kind == FrameKind::kError) {
    // An error outside any envelope: the endpoint rejected the envelope
    // itself (fencing, misrouting, corruption on its side of the wire).
    Status transported;
    if (!DecodeError(outer->payload, &transported).ok()) {
      transported = Status::Corruption("undecodable shard error payload");
    }
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu refused the request: %s", shard,
        transported.ToString().c_str())));
  }
  if (outer->kind != FrameKind::kShardResponse) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu answered with frame kind %u, not a shard response", shard,
        static_cast<unsigned>(outer->kind))));
  }
  auto envelope = DecodeShardEnvelope(outer->payload);
  if (!envelope.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu response envelope: %s", shard,
        envelope.status().ToString().c_str())));
  }
  // The echo is what catches misrouted, stale-coordinator and reordered
  // responses before any bytes reach a merge.
  if (envelope->shard_id != shard || envelope->epoch != options_.epoch ||
      envelope->seq != seq) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu response envelope mismatch (shard %zu epoch %llu seq "
        "%llu; expected %zu/%llu/%llu)",
        shard, envelope->shard_id,
        static_cast<unsigned long long>(envelope->epoch),
        static_cast<unsigned long long>(envelope->seq), shard,
        static_cast<unsigned long long>(options_.epoch),
        static_cast<unsigned long long>(seq))));
  }
  auto inner_frame = DecodeFrame(envelope->inner);
  if (!inner_frame.ok()) {
    return fail(Status::Unavailable(StringPrintf(
        "shard %zu inner frame: %s", shard,
        inner_frame.status().ToString().c_str())));
  }
  return inner_frame;
}

std::vector<Result<Frame>> ShardCoordinator::FanOut(
    const std::vector<uint8_t>& inner) {
  const size_t shards = transports_.size();
  std::vector<Result<Frame>> out(
      shards, Result<Frame>(Status::Internal("shard not contacted")));
  // The round trips overlap as executor tasks (each one blocks on its
  // transport, so the fanout_threads cap is what bounds how many workers
  // one request can pin on I/O waits). The caller participates too, so a
  // fully-busy pool degrades to the sequential loop, never a stall.
  index::ForEachShard(pool_, shards, [&](size_t s) {
    out[s] = ShardRoundTrip(s, inner);
  }, options_.fanout_threads);
  return out;
}

Status ShardCoordinator::Handshake() {
  // Lock-free fast path: once handshaken, per-request checks cost one
  // acquire load instead of contending a mutex across batch workers.
  if (handshaken_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(handshake_mu_);
  if (handshaken_.load(std::memory_order_relaxed)) return Status::OK();
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shard transports");
  }
  size_t bucket_count = 0;
  for (size_t s = 0; s < transports_.size(); ++s) {
    EMB_ASSIGN_OR_RETURN(Frame inner, ShardRoundTrip(s, {}));
    if (inner.kind != FrameKind::kHelloOk) {
      return Status::Unavailable(StringPrintf(
          "shard %zu answered the ping with frame kind %u", s,
          static_cast<unsigned>(inner.kind)));
    }
    EMB_ASSIGN_OR_RETURN(HelloOkPayload topology,
                         DecodeHelloOk(inner.payload));
    // A coordinator shard must serve exactly one slice: PIR bucket fields
    // are rewritten to shard-local addresses, which an internally-sharded
    // server would misinterpret as shard-qualified.
    if (topology.shard_count != 1) {
      return Status::FailedPrecondition(StringPrintf(
          "shard %zu serves %zu shards; coordinator shards must each serve "
          "one slice", s, topology.shard_count));
    }
    if (s == 0) {
      bucket_count = topology.bucket_count;
    } else if (topology.bucket_count != bucket_count) {
      return Status::FailedPrecondition(StringPrintf(
          "shard %zu advertises %zu buckets but shard 0 advertises %zu — "
          "shards must share one bucket organization",
          s, topology.bucket_count, bucket_count));
    }
  }
  bucket_count_.store(bucket_count, std::memory_order_release);
  handshaken_.store(true, std::memory_order_release);
  return Status::OK();
}

std::vector<uint8_t> ShardCoordinator::HandleFrame(
    const std::vector<uint8_t>& request) {
  std::vector<uint8_t> response = ProcessOne(request);
  Count(&AtomicStats::frames);
  return response;
}

std::vector<std::vector<uint8_t>> ShardCoordinator::HandleBatch(
    const std::vector<std::vector<uint8_t>>& requests) {
  std::vector<std::vector<uint8_t>> responses(requests.size());
  auto handle_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      responses[i] = HandleFrame(requests[i]);
    }
  };
  if (pool_ != nullptr && requests.size() > 1) {
    pool_->ParallelFor(0, requests.size(), /*min_grain=*/1, handle_range);
  } else {
    handle_range(0, requests.size());
  }
  return responses;
}

std::vector<uint8_t> ShardCoordinator::ProcessOne(
    const std::vector<uint8_t>& request) {
  frame_clock_.fetch_add(1, std::memory_order_relaxed);
  auto frame = DecodeFrame(request);
  if (!frame.ok()) return ErrorFrame(0, frame.status());
  // Any decodable frame naming a registered session counts as activity for
  // the idle-expiry sweep, whatever its kind.
  sessions_.Touch(frame->session_id,
                  frame_clock_.load(std::memory_order_relaxed));
  // Lazy handshake: a coordinator that cannot reach its shards answers
  // every request with a typed error rather than wedging.
  Status handshake = Handshake();
  if (!handshake.ok()) return ErrorFrame(frame->session_id, handshake);
  switch (frame->kind) {
    case FrameKind::kHello:
      return HandleHello(*frame, request);
    case FrameKind::kQuery:
      return HandleQuery(*frame, request);
    case FrameKind::kPirQuery:
      return HandlePirQuery(*frame);
    case FrameKind::kTopKQuery:
      return HandleTopK(*frame, request);
    default:
      return ErrorFrame(frame->session_id,
                        Status::InvalidArgument(
                            "frame kind is not a request"));
  }
}

namespace {

// First failed round trip in shard order, for deterministic error frames.
const Status* FirstFailure(const std::vector<Result<Frame>>& responses) {
  for (const Result<Frame>& r : responses) {
    if (!r.ok()) return &r.status();
  }
  return nullptr;
}

// First inner kError in shard order (application-level shard errors pass
// through to the client unchanged).
const Frame* FirstInnerError(const std::vector<Result<Frame>>& responses) {
  for (const Result<Frame>& r : responses) {
    if (r.ok() && r->kind == FrameKind::kError) return &*r;
  }
  return nullptr;
}

}  // namespace

std::vector<uint8_t> ShardCoordinator::HandleHello(
    const Frame& frame, const std::vector<uint8_t>& request) {
  auto pk = DecodeHello(frame.payload);
  if (!pk.ok()) return ErrorFrame(frame.session_id, pk.status());
  // Register at the coordinator first (bounded + idle-expiring, same
  // semantics as the server's table). If the downstream fan-out then
  // fails, the registration stays: the self-healing path re-registers the
  // session on any shard that missed it when the next query arrives.
  if (!sessions_.Register(
          frame.session_id,
          std::make_shared<const crypto::BenalohPublicKey>(std::move(*pk)),
          frame_clock_.load(std::memory_order_relaxed))) {
    return ErrorFrame(frame.session_id,
                      Status::FailedPrecondition(
                          "session table full; hello refused"));
  }

  // Forward the hello verbatim so every shard registers the session key
  // (their per-shard epochs may differ; each shard's cache scoping is its
  // own business).
  std::vector<Result<Frame>> responses = FanOut(request);
  if (const Status* failure = FirstFailure(responses)) {
    return ErrorFrame(frame.session_id, *failure);
  }
  if (const Frame* inner_error = FirstInnerError(responses)) {
    return PassThroughError(frame.session_id, inner_error->payload);
  }
  for (size_t s = 0; s < responses.size(); ++s) {
    if (responses[s]->kind != FrameKind::kHelloOk ||
        responses[s]->session_id != frame.session_id) {
      return ErrorFrame(frame.session_id,
                        Status::Unavailable(StringPrintf(
                            "shard %zu answered the hello with an unexpected "
                            "frame", s)));
    }
  }
  Count(&AtomicStats::hellos);
  // Advertise the *global* topology: the client addresses PIR executions
  // via shard-qualified bucket fields exactly as against the in-process
  // sharded server, and these bytes match that server's hello-ok.
  return EncodeFrame(FrameKind::kHelloOk, frame.session_id,
                     EncodeHelloOk(shard_count(), bucket_count()));
}

bool ShardCoordinator::ReRegisterOnShards(
    uint64_t session_id, const crypto::BenalohPublicKey& pk) {
  // EncodeHello reproduces the registration payload deterministically from
  // the coordinator's copy of the key, so a shard that lost the session —
  // restart, idle expiry on its side, or a raced re-hello that left it
  // holding a superseded key — converges back to the coordinator's view.
  std::vector<uint8_t> hello =
      EncodeFrame(FrameKind::kHello, session_id, EncodeHello(pk));
  std::vector<Result<Frame>> responses = FanOut(hello);
  for (size_t s = 0; s < responses.size(); ++s) {
    if (!responses[s].ok() ||
        responses[s]->kind != FrameKind::kHelloOk ||
        responses[s]->session_id != session_id) {
      return false;
    }
  }
  return true;
}

std::vector<uint8_t> ShardCoordinator::HandleQuery(
    const Frame& frame, const std::vector<uint8_t>& request) {
  SessionTable::Entry session = sessions_.Find(frame.session_id);
  const std::shared_ptr<const crypto::BenalohPublicKey>& pk = session.pk;
  if (pk == nullptr) {
    return ErrorFrame(frame.session_id,
                      Status::FailedPrecondition(
                          "session has not sent a hello frame"));
  }

  // Upstream cache, keyed exactly like the server's PR entries — kind,
  // session, registration epoch, payload bytes. Session consistency makes a
  // recurring genuine-term set a byte-identical uplink, so a hit replays
  // the previously merged response without touching any shard; the epoch
  // component means a re-hello (new key, new epoch) can never be answered
  // with bytes merged under the superseded key.
  std::string cache_key;
  if (cache_.enabled()) {
    cache_key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                       frame.session_id, session.epoch,
                                       frame.payload);
    std::vector<uint8_t> cached;
    if (cache_.Get(cache_key, &cached)) {
      Count(&AtomicStats::queries);
      return cached;
    }
  }

  // Up to two passes: if a shard turns out to have lost (or to hold a
  // superseded copy of) this session's registration — it answers
  // FailedPrecondition, or its partial result fails to decode under the
  // coordinator's key — the session is re-registered from the
  // coordinator's table and the query retried once. One stale shard must
  // not fail the session's queries forever.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool can_repair = attempt == 0;
    std::vector<Result<Frame>> responses = FanOut(request);
    if (const Status* failure = FirstFailure(responses)) {
      return ErrorFrame(frame.session_id, *failure);
    }
    if (const Frame* inner_error = FirstInnerError(responses)) {
      Status transported;
      const bool lost_session =
          DecodeError(inner_error->payload, &transported).ok() &&
          transported.IsFailedPrecondition();
      if (lost_session && can_repair &&
          ReRegisterOnShards(frame.session_id, *pk)) {
        continue;
      }
      return PassThroughError(frame.session_id, inner_error->payload);
    }

    std::vector<core::EncryptedResult> partial;
    partial.reserve(responses.size());
    Status decode_failure;
    for (size_t s = 0; s < responses.size() && decode_failure.ok(); ++s) {
      const Frame& inner = *responses[s];
      if (inner.kind != FrameKind::kResult ||
          inner.session_id != frame.session_id) {
        return ErrorFrame(frame.session_id,
                          Status::Unavailable(StringPrintf(
                              "shard %zu answered the query with an "
                              "unexpected frame", s)));
      }
      auto result = core::DecodeResult(inner.payload, *pk);
      if (!result.ok()) {
        decode_failure = Status::Unavailable(StringPrintf(
            "shard %zu result: %s", s, result.status().ToString().c_str()));
        break;
      }
      partial.push_back(std::move(*result));
    }
    if (!decode_failure.ok()) {
      if (can_repair && ReRegisterOnShards(frame.session_id, *pk)) continue;
      return ErrorFrame(frame.session_id, decode_failure);
    }

    // The PR 3 merge: shard-disjoint documents re-sorted into canonical
    // order, bit-identical to the in-process sharded server's response.
    core::EncryptedResult merged =
        core::MergeShardResults(std::move(partial));
    Count(&AtomicStats::queries);
    std::vector<uint8_t> response =
        EncodeFrame(FrameKind::kResult, frame.session_id,
                    core::EncodeResult(merged, *pk));
    if (cache_.enabled()) cache_.Put(cache_key, response);
    return response;
  }
  return ErrorFrame(frame.session_id,
                    Status::Internal("unreachable query retry exit"));
}

std::vector<uint8_t> ShardCoordinator::HandlePirQuery(const Frame& frame) {
  auto payload = DecodePirQuery(frame.payload);
  if (!payload.ok()) return ErrorFrame(frame.session_id, payload.status());

  const size_t buckets = bucket_count();
  if (buckets == 0) {
    return ErrorFrame(frame.session_id,
                      Status::OutOfRange("server has no buckets"));
  }
  // Identical address validation (and messages) to the sharded
  // EmbellishServer: the saturation sentinel is rejected, oversized shard
  // indexes are rejected.
  if (payload->bucket == UINT32_MAX) {
    return ErrorFrame(
        frame.session_id,
        Status::OutOfRange("shard-qualified bucket field saturated"));
  }
  const size_t shard = payload->bucket / buckets;
  const size_t bucket = payload->bucket % buckets;
  if (shard >= shard_count()) {
    return ErrorFrame(frame.session_id,
                      Status::OutOfRange(
                          "shard-qualified bucket out of range"));
  }

  // Rewrite the bucket field to the shard-local address: the slice server
  // is monolithic over its slice.
  std::vector<uint8_t> inner = EncodeFrame(
      FrameKind::kPirQuery, frame.session_id,
      EncodePirQuery(bucket, payload->query));
  auto response = ShardRoundTrip(shard, inner);
  if (!response.ok()) {
    return ErrorFrame(frame.session_id, response.status());
  }
  if (response->kind == FrameKind::kError) {
    return PassThroughError(frame.session_id, response->payload);
  }
  if (response->kind != FrameKind::kPirResult ||
      response->session_id != frame.session_id) {
    return ErrorFrame(frame.session_id,
                      Status::Unavailable(StringPrintf(
                          "shard %zu answered the PIR query with an "
                          "unexpected frame", shard)));
  }
  Count(&AtomicStats::pir_queries);
  // The shard's response payload is already exactly what the in-process
  // sharded server would emit; re-frame it under the client's session id.
  return EncodeFrame(FrameKind::kPirResult, frame.session_id,
                     response->payload);
}

std::vector<uint8_t> ShardCoordinator::HandleTopK(
    const Frame& frame, const std::vector<uint8_t>& request) {
  auto query = DecodeTopKQuery(frame.payload);
  if (!query.ok()) return ErrorFrame(frame.session_id, query.status());

  std::vector<Result<Frame>> responses = FanOut(request);
  if (const Status* failure = FirstFailure(responses)) {
    return ErrorFrame(frame.session_id, *failure);
  }
  if (const Frame* inner_error = FirstInnerError(responses)) {
    return PassThroughError(frame.session_id, inner_error->payload);
  }

  std::vector<std::vector<index::ScoredDoc>> partial;
  partial.reserve(responses.size());
  for (size_t s = 0; s < responses.size(); ++s) {
    const Frame& inner = *responses[s];
    if (inner.kind != FrameKind::kTopKResult ||
        inner.session_id != frame.session_id) {
      return ErrorFrame(frame.session_id,
                        Status::Unavailable(StringPrintf(
                            "shard %zu answered the top-k query with an "
                            "unexpected frame", s)));
    }
    auto docs = DecodeTopKResult(inner.payload);
    if (!docs.ok()) {
      return ErrorFrame(frame.session_id,
                        Status::Unavailable(StringPrintf(
                            "shard %zu top-k result: %s", s,
                            docs.status().ToString().c_str())));
    }
    partial.push_back(std::move(*docs));
  }

  std::vector<index::ScoredDoc> merged =
      index::MergeShardTopK(partial, query->k);
  Count(&AtomicStats::topk_queries);
  return EncodeFrame(FrameKind::kTopKResult, frame.session_id,
                     EncodeTopKResult(merged));
}

}  // namespace embellish::server
