#include "server/embellish_server.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/answer_path.h"
#include "common/stopwatch.h"
#include "core/wire_format.h"
#include "index/topk.h"
#include "server/async_frontend.h"

namespace embellish::server {

std::unique_ptr<index::IndexCatalog> EmbellishServer::MakeShimCatalog(
    const index::InvertedIndex* index, const core::BucketOrganization* buckets,
    const storage::StorageLayout* layout,
    const EmbellishServerOptions& options) {
  // Replicates the pre-catalog ctor's topology decisions. Slice mode
  // composes with a ShardCoordinator, not with in-process sharding; an
  // invalid slice configuration falls back (and is reported by
  // slice_config_invalid(), resolved per epoch in BuildEngines).
  index::IndexCatalogOptions catalog_options;
  const bool slice_valid =
      options.shard_slice != SIZE_MAX && options.shard_count <= 1 &&
      options.shard_slice_count > 0 &&
      options.shard_slice < options.shard_slice_count;
  if (slice_valid) {
    catalog_options.sharding.shard_count = options.shard_slice_count;
    catalog_options.sharding.partition = options.shard_partition;
  } else if (options.shard_count > 1) {
    catalog_options.sharding.shard_count = options.shard_count;
    catalog_options.sharding.partition = options.shard_partition;
  }
  catalog_options.build_layouts = layout != nullptr;
  catalog_options.layout_policy =
      layout != nullptr ? layout->policy()
                        : storage::LayoutPolicy::kBucketColocated;
  catalog_options.disk = options.disk;
  auto catalog =
      index::IndexCatalog::Freeze(index, buckets, layout, catalog_options);
  // Freeze fails only on null inputs or invalid sharding, both of which
  // were construction-order bugs under the old ctor too.
  return catalog.ok() ? std::move(catalog).value() : nullptr;
}

EmbellishServer::EmbellishServer(index::IndexCatalog* catalog,
                                 const EmbellishServerOptions& options,
                                 ThreadPool* pool)
    : EmbellishServer(nullptr, catalog, options, pool) {}

EmbellishServer::EmbellishServer(const index::InvertedIndex* index,
                                 const core::BucketOrganization* buckets,
                                 const storage::StorageLayout* layout,
                                 const EmbellishServerOptions& options,
                                 ThreadPool* pool)
    : EmbellishServer(MakeShimCatalog(index, buckets, layout, options), nullptr,
                      options, pool) {}

EmbellishServer::EmbellishServer(
    std::unique_ptr<index::IndexCatalog> owned_catalog,
    index::IndexCatalog* catalog, const EmbellishServerOptions& options,
    ThreadPool* pool)
    : options_(options),
      // No caller pool, but intra-query shard parallelism requested: spawn
      // an owned executor of the requested width and serve everything from
      // it — the pre-executor dedicated-shard-pool behavior, minus the old
      // one-region-at-a-time collision.
      owned_pool_(pool == nullptr && options.shard_threads > 1 &&
                          options.shard_count > 1 &&
                          options.shard_slice == SIZE_MAX
                      ? std::make_unique<ThreadPool>(options.shard_threads)
                      : nullptr),
      pool_(pool != nullptr ? pool : owned_pool_.get()),
      owned_catalog_(std::move(owned_catalog)),
      catalog_(catalog != nullptr ? catalog : owned_catalog_.get()),
      bucket_count_(catalog_->Acquire()->buckets().bucket_count()),
      sessions_(options.max_sessions, options.session_idle_frames),
      cache_(options.cache_capacity, options.cache_max_bytes) {
  // Resolve the initial epoch eagerly so construction surfaces any
  // topology problem immediately (and the first request pays no assembly).
  engines_ = BuildEngines(catalog_->Acquire());
}

std::shared_ptr<const EmbellishServer::EpochEngines>
EmbellishServer::BuildEngines(
    std::shared_ptr<const index::IndexEpoch> snapshot) const {
  auto engines = std::make_shared<EpochEngines>();
  const index::IndexEpoch& epoch = *snapshot;
  engines->epoch = std::move(snapshot);

  // Slice resolution against THIS epoch. Params must be valid, and the
  // epoch's partition must actually be the slice topology (after a
  // background Reshard to a different shard count it no longer is; the
  // server then serves the full index and flags the mismatch).
  const bool slice_requested = options_.shard_slice != SIZE_MAX;
  const bool slice_params_valid =
      slice_requested && options_.shard_count <= 1 &&
      options_.shard_slice_count > 0 &&
      options_.shard_slice < options_.shard_slice_count;
  if (slice_params_valid) {
    if (options_.shard_slice_count == 1) {
      // A 1-way partition's only slice IS the full index.
      engines->slice_active = true;
      engines->serve_index = &epoch.index();
      engines->serve_layout = epoch.layout();
    } else if (epoch.sharded() != nullptr &&
               epoch.shard_count() == options_.shard_slice_count &&
               epoch.sharding().partition == options_.shard_partition) {
      engines->slice_active = true;
      engines->serve_index = &epoch.sharded()->shard(options_.shard_slice);
      engines->serve_layout =
          epoch.shard_layouts() != nullptr
              ? &(*epoch.shard_layouts())[options_.shard_slice]
              : nullptr;
    } else {
      engines->slice_invalid = true;  // epoch/slice topology mismatch
    }
  } else if (slice_requested) {
    engines->slice_invalid = true;  // bad params (old-ctor fallback rules)
  }

  if (!engines->slice_active && epoch.sharded() != nullptr) {
    // Sharded serving: fan-outs run on the shared executor, capped by
    // shard_threads; every pointer handed to the engines lives inside the
    // pinned snapshot.
    engines->sharded_pr = std::make_unique<core::ShardedPrivateRetrievalServer>(
        epoch.sharded(), &epoch.buckets(), epoch.shard_layouts(),
        options_.disk, options_.pr, pool_, options_.shard_threads);
    engines->sharded_pir = std::make_unique<core::ShardedPirRetrievalServer>(
        epoch.sharded(), &epoch.buckets(), epoch.shard_layouts(),
        options_.disk, pool_, options_.shard_threads);
    engines->serve_index = &epoch.index();
    engines->serve_layout = epoch.layout();
    engines->advertised_shards = epoch.shard_count();
    return engines;
  }

  // Monolithic serving (full index, a slice, or the mismatch fallback).
  if (engines->serve_index == nullptr) {
    engines->serve_index = &epoch.index();
    engines->serve_layout = epoch.layout();
  }
  engines->pr = std::make_unique<core::PrivateRetrievalServer>(
      engines->serve_index, &epoch.buckets(), engines->serve_layout,
      options_.disk, options_.pr, pool_);
  engines->pir = std::make_unique<core::PirRetrievalServer>(
      engines->serve_index, &epoch.buckets(), engines->serve_layout,
      options_.disk, pool_);
  engines->advertised_shards = 1;
  return engines;
}

std::shared_ptr<const EmbellishServer::EpochEngines>
EmbellishServer::ResolveEngines() const {
  std::shared_ptr<const index::IndexEpoch> snapshot = catalog_->Acquire();
  {
    std::lock_guard<std::mutex> lock(engines_mu_);
    if (engines_ != nullptr && engines_->epoch == snapshot) return engines_;
  }
  // A new epoch was installed: assemble a bundle for it OUTSIDE the lock
  // (pointer assembly only — no index builds, so this is answer-path safe
  // and concurrent resolvers merely race to install equivalent bundles).
  std::shared_ptr<const EpochEngines> built = BuildEngines(std::move(snapshot));
  std::lock_guard<std::mutex> lock(engines_mu_);
  if (engines_ != nullptr &&
      engines_->epoch->epoch() >= built->epoch->epoch()) {
    // A racer installed this epoch (its lazy PIR matrices may already be
    // warm — prefer it), or a newer one (never regress).
    return engines_;
  }
  engines_ = std::move(built);
  return engines_;
}

size_t EmbellishServer::shard_count() const {
  return ResolveEngines()->advertised_shards;
}

bool EmbellishServer::serves_slice() const {
  return ResolveEngines()->slice_active;
}

bool EmbellishServer::slice_config_invalid() const {
  return ResolveEngines()->slice_invalid;
}

void EmbellishServer::MergeDelta(const ServerStats& d) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats& t = totals_;
  t.frames += d.frames;
  t.hellos += d.hellos;
  t.queries += d.queries;
  t.pir_queries += d.pir_queries;
  t.topk_queries += d.topk_queries;
  t.errors += d.errors;
  t.shed += d.shed;
  // cache_hits/cache_misses are not per-request deltas; stats() snapshots
  // them straight from the ResponseCache's own counters.
  t.uplink_bytes += d.uplink_bytes;
  t.downlink_bytes += d.downlink_bytes;
  t.server_cpu_ms += d.server_cpu_ms;
  t.server_io_ms += d.server_io_ms;
  t.topk_shards_visited += d.topk_shards_visited;
  t.topk_shards_skipped += d.topk_shards_skipped;
  t.pir_batch_sweeps += d.pir_batch_sweeps;
  t.pir_batched_queries += d.pir_batched_queries;
  t.pir_batch_budget_splits += d.pir_batch_budget_splits;
}

size_t EmbellishServer::AcquireInflight(size_t want) {
  if (options_.max_inflight == 0) return want;
  size_t current = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t room = options_.max_inflight > current
                            ? options_.max_inflight - current
                            : 0;
    const size_t grant = std::min(want, room);
    if (grant == 0) return 0;
    if (inflight_.compare_exchange_weak(current, current + grant,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return grant;
    }
  }
}

void EmbellishServer::ReleaseInflight(size_t granted) {
  if (options_.max_inflight == 0 || granted == 0) return;
  inflight_.fetch_sub(granted, std::memory_order_acq_rel);
}

EmbellishServer::RequestOutcome EmbellishServer::BusyOutcome() {
  RequestOutcome outcome = ErrorOutcome(
      0, Status::Busy("server in-flight budget exhausted; request shed"));
  outcome.delta.shed = 1;
  outcome.delta.frames = 1;
  outcome.delta.downlink_bytes = outcome.response.size();
  return outcome;
}

std::vector<uint8_t> EmbellishServer::HandleFrame(
    const std::vector<uint8_t>& request) {
  // Pin the current epoch for this frame; a successor installing mid-flight
  // changes nothing we can observe.
  std::shared_ptr<const EpochEngines> engines = ResolveEngines();
  common::ScopedAnswerPath answer_path;
  RequestOutcome outcome;
  if (AcquireInflight(1) == 0) {
    outcome = BusyOutcome();
  } else {
    outcome = ProcessOne(*engines, request);
    ReleaseInflight(1);
  }
  MergeDelta(outcome.delta);
  return std::move(outcome.response);
}

std::vector<std::vector<uint8_t>> EmbellishServer::HandleBatch(
    const std::vector<std::vector<uint8_t>>& requests) {
  // One pin per batch: every request in the batch answers against the same
  // immutable snapshot, whatever the catalog installs meanwhile.
  std::shared_ptr<const EpochEngines> engines = ResolveEngines();
  std::vector<std::vector<uint8_t>> responses(requests.size());
  // Admission is reserved for the whole batch up front: the first `granted`
  // requests are processed, the rest are shed with typed kBusy frames — a
  // deterministic suffix, so the client knows exactly which to resend.
  const size_t granted = AcquireInflight(requests.size());
  // Phase 1 (dispatch): decode and answer everything except PIR compute,
  // which parks in the collector. Phase 2 then answers the parked queries
  // in shared sweeps, grouped by (epoch, shard) — the epoch is this batch's
  // single pinned snapshot, so the group key reduces to the shard.
  PirBatchCollector collector;
  auto handle_range = [&](size_t begin, size_t end) {
    common::ScopedAnswerPath answer_path;
    for (size_t i = begin; i < end; ++i) {
      RequestOutcome outcome = i < granted
                                   ? ProcessOne(*engines, requests[i],
                                                &collector, i)
                                   : BusyOutcome();
      MergeDelta(outcome.delta);
      responses[i] = std::move(outcome.response);
    }
  };
  // Tiny batches run inline: at 1-2 requests the region bookkeeping and
  // worker wake-ups cost more than the overlap buys (the BENCH_server.json
  // batched-path regression), and any intra-request parallelism still
  // arrives through the engines' own nested regions.
  constexpr size_t kInlineBatchMax = 2;
  if (pool_ != nullptr && requests.size() > kInlineBatchMax) {
    pool_->ParallelFor(0, requests.size(), /*min_grain=*/1, handle_range);
  } else {
    handle_range(0, requests.size());
  }
  AnswerDeferredPir(*engines, collector, &responses);
  ReleaseInflight(granted);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++totals_.batches;
  return responses;
}

Result<std::unique_ptr<AsyncFrontEnd>> EmbellishServer::ServeAsync(
    int listen_fd, EventLoop* loop) {
  return ServeAsync(listen_fd, loop, AsyncFrontEndOptions{});
}

Result<std::unique_ptr<AsyncFrontEnd>> EmbellishServer::ServeAsync(
    int listen_fd, EventLoop* loop, const AsyncFrontEndOptions& options) {
  return AsyncFrontEnd::Create(
      listen_fd, loop,
      [this](const std::vector<std::vector<uint8_t>>& requests) {
        return HandleBatch(requests);
      },
      options);
}

size_t EmbellishServer::session_count() const { return sessions_.size(); }

ServerStats EmbellishServer::stats() const {
  const index::IndexCatalogStats catalog_stats = catalog_->stats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats snapshot = totals_;
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  snapshot.sessions_expired = sessions_.expired_total();
  snapshot.epoch_swaps = catalog_stats.epoch_swaps;
  snapshot.delta_docs_ingested = catalog_stats.delta_docs_ingested;
  snapshot.reshard_micros = catalog_stats.reshard_micros;
  snapshot.pinned_epochs =
      catalog_stats.pinned_epochs > 0
          ? static_cast<uint64_t>(catalog_stats.pinned_epochs)
          : 0;
  snapshot.answer_path_builds = catalog_stats.answer_path_builds;
  return snapshot;
}

EmbellishServer::RequestOutcome EmbellishServer::ErrorOutcome(
    uint64_t session_id, const Status& status) {
  RequestOutcome outcome;
  outcome.response =
      EncodeFrame(FrameKind::kError, session_id, EncodeError(status));
  outcome.delta.errors = 1;
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::ProcessOne(
    const EpochEngines& engines, const std::vector<uint8_t>& request,
    PirBatchCollector* collector, size_t slot) {
  frame_clock_.fetch_add(1, std::memory_order_relaxed);
  RequestOutcome outcome;
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    outcome = ErrorOutcome(0, frame.status());
  } else {
    // Any decodable frame naming a registered session counts as activity
    // for the idle-expiry sweep, whatever its kind: PIR- or top-k-only
    // sessions must not lose their registered key mid-stream.
    sessions_.Touch(frame->session_id,
                    frame_clock_.load(std::memory_order_relaxed));
    switch (frame->kind) {
      case FrameKind::kHello:
        outcome = HandleHello(engines, *frame);
        break;
      case FrameKind::kQuery:
        outcome = HandleQuery(engines, *frame);
        break;
      case FrameKind::kPirQuery:
        outcome = HandlePirQuery(engines, *frame, collector, slot);
        break;
      case FrameKind::kTopKQuery:
        outcome = HandleTopK(engines, *frame);
        break;
      default:
        outcome = ErrorOutcome(
            frame->session_id,
            Status::InvalidArgument("frame kind is not a request"));
        break;
    }
  }
  outcome.delta.frames += 1;
  outcome.delta.uplink_bytes += request.size();
  outcome.delta.downlink_bytes += outcome.response.size();
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandleHello(
    const EpochEngines& engines, const Frame& frame) {
  auto pk = DecodeHello(frame.payload);
  if (!pk.ok()) return ErrorOutcome(frame.session_id, pk.status());
  if (!sessions_.Register(
          frame.session_id,
          std::make_shared<const crypto::BenalohPublicKey>(std::move(*pk)),
          frame_clock_.load(std::memory_order_relaxed))) {
    return ErrorOutcome(frame.session_id,
                        Status::FailedPrecondition(
                            "session table full; hello refused"));
  }
  RequestOutcome outcome;
  // The hello-ok advertises the retrieval topology: a client on a sharded
  // server must know shard_count and bucket_count to address PIR
  // executions (and to know it has to query every shard).
  outcome.response =
      EncodeFrame(FrameKind::kHelloOk, frame.session_id,
                  EncodeHelloOk(engines.advertised_shards, bucket_count_));
  outcome.delta.hellos = 1;
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandleQuery(
    const EpochEngines& engines, const Frame& frame) {
  SessionTable::Entry session = sessions_.Find(frame.session_id);
  if (session.pk == nullptr) {
    return ErrorOutcome(frame.session_id,
                        Status::FailedPrecondition(
                            "session has not sent a hello frame"));
  }
  const crypto::BenalohPublicKey& pk = *session.pk;
  RequestOutcome outcome;
  std::string key;
  if (cache_.enabled()) {  // key building copies the payload; skip when off
    key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                 frame.session_id, session.epoch,
                                 engines.epoch->epoch(), frame.payload);
    if (cache_.Get(key, &outcome.response)) {
      outcome.delta.queries = 1;
      return outcome;
    }
  }

  auto query = core::DecodeQuery(frame.payload, pk);
  if (!query.ok()) return ErrorOutcome(frame.session_id, query.status());

  core::RetrievalCosts costs;
  // The sharded engine's merged candidate set is bit-identical to the
  // monolithic server's, so the encoded response frame (and any cached
  // copy) does not depend on the shard configuration.
  auto result = engines.sharded_pr != nullptr
                    ? engines.sharded_pr->Process(*query, pk, &costs)
                    : engines.pr->Process(*query, pk, &costs);
  if (!result.ok()) return ErrorOutcome(frame.session_id, result.status());

  outcome.response = EncodeFrame(FrameKind::kResult, frame.session_id,
                                 core::EncodeResult(*result, pk));
  if (cache_.enabled()) cache_.Put(key, outcome.response);
  outcome.delta.queries = 1;
  outcome.delta.server_cpu_ms = costs.server_cpu_ms;
  outcome.delta.server_io_ms = costs.server_io_ms;
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandlePirQuery(
    const EpochEngines& engines, const Frame& frame,
    PirBatchCollector* collector, size_t slot) {
  auto payload = DecodePirQuery(frame.payload);
  if (!payload.ok()) return ErrorOutcome(frame.session_id, payload.status());

  // When sharded, the frame's bucket field is shard-qualified:
  // shard * bucket_count + bucket (see PirBucketField).
  const bool sharded = engines.sharded_pir != nullptr;
  if (sharded && bucket_count_ == 0) {
    return ErrorOutcome(frame.session_id,
                        Status::OutOfRange("server has no buckets"));
  }
  // UINT32_MAX is the encoder's saturation sentinel for a shard-qualified
  // field that overflowed the u32 wire width; reject it even when it would
  // decode to an in-range pair, so an overflowed address can never alias.
  if (sharded && payload->bucket == UINT32_MAX) {
    return ErrorOutcome(
        frame.session_id,
        Status::OutOfRange("shard-qualified bucket field saturated"));
  }
  const size_t shard = sharded ? payload->bucket / bucket_count_ : 0;
  const size_t bucket = sharded ? payload->bucket % bucket_count_
                                : payload->bucket;
  if (sharded && shard >= engines.sharded_pir->shard_count()) {
    return ErrorOutcome(
        frame.session_id,
        Status::OutOfRange("shard-qualified bucket out of range"));
  }

  RequestOutcome outcome;
  // PIR answers depend only on the payload (the modulus travels inside it),
  // never on any registered key, so entries are keyed *globally* — session
  // and registration-epoch components pinned to zero — and one session's
  // answer serves every session that replays the same payload. Because the
  // response frame header embeds the requester's session id, the cache
  // stores the response payload and the frame is rebuilt per request:
  // bit-identical bytes for the same session, correctly addressed for every
  // other. Per-shard answers still occupy distinct entries because the
  // payload embeds the shard-qualified bucket field, and the database epoch
  // in the key keeps answers from crossing a delta/reshard cutover (a PIR
  // answer is a function of the epoch's exact shard layout). (PR entries,
  // by contrast, stay keyed by session *and* registration epoch — their
  // ciphertexts are bound to the session's key.)
  std::string key;
  if (cache_.enabled()) {
    key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                 /*session_id=*/0, /*epoch=*/0,
                                 engines.epoch->epoch(), frame.payload);
    std::vector<uint8_t> cached_payload;
    if (cache_.Get(key, &cached_payload)) {
      outcome.response = EncodeFrame(FrameKind::kPirResult, frame.session_id,
                                     cached_payload);
      outcome.delta.pir_queries = 1;
      return outcome;
    }
  }

  // Batched dispatch: park the decoded, cache-missed query; the batch's
  // phase 2 answers every parked query of this shard in one shared sweep
  // and fills the response slot (and the cache entry) then. The collector
  // mutex guards only this queue admission — no answer compute happens
  // under any server-level lock any more.
  if (collector != nullptr) {
    std::lock_guard<std::mutex> lock(collector->mu);
    collector->pending.push_back(PendingPir{slot, frame.session_id, shard,
                                            bucket, std::move(*payload),
                                            std::move(key)});
    outcome.deferred = true;
    return outcome;
  }

  core::RetrievalCosts costs;
  // The engines' lazy bucket-matrix caches are internally synchronized, so
  // the single-frame path computes without any external lock.
  Result<crypto::PirResponse> response =
      sharded ? engines.sharded_pir->Answer(shard, bucket, payload->query,
                                            &costs)
              : engines.pir->Answer(bucket, payload->query, &costs);
  if (!response.ok()) return ErrorOutcome(frame.session_id, response.status());

  const size_t value_size = (payload->query.n.BitLength() + 7) / 8;
  std::vector<uint8_t> response_payload =
      EncodePirResponse(*response, value_size);
  outcome.response = EncodeFrame(FrameKind::kPirResult, frame.session_id,
                                 response_payload);
  if (cache_.enabled()) cache_.Put(key, std::move(response_payload));
  outcome.delta.pir_queries = 1;
  outcome.delta.server_cpu_ms = costs.server_cpu_ms;
  outcome.delta.server_io_ms = costs.server_io_ms;
  return outcome;
}

void EmbellishServer::AnswerDeferredPir(
    const EpochEngines& engines, PirBatchCollector& collector,
    std::vector<std::vector<uint8_t>>* responses) {
  if (collector.pending.empty()) return;

  // Group the batch's deferred queries by shard (the epoch half of the
  // (epoch, shard) key is constant: the whole batch answers against one
  // pinned snapshot). Deterministic order; arrival order within a group is
  // whatever dispatch produced, which is fine — every slot is addressed
  // explicitly.
  std::map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < collector.pending.size(); ++i) {
    by_shard[collector.pending[i].shard].push_back(i);
  }
  std::vector<std::pair<size_t, std::vector<size_t>>> groups;
  groups.reserve(by_shard.size());
  for (auto& [shard, indices] : by_shard) {
    groups.emplace_back(shard, std::move(indices));
  }

  // Finish one deferred query: rebuild its per-session response frame from
  // the gamma vector, fill the global cache, and account the downlink the
  // dispatch pass could not see.
  auto finalize = [&](PendingPir& p, const crypto::PirResponse& response,
                      ServerStats* delta) {
    const size_t value_size = (p.payload.query.n.BitLength() + 7) / 8;
    std::vector<uint8_t> response_payload =
        EncodePirResponse(response, value_size);
    (*responses)[p.slot] = EncodeFrame(FrameKind::kPirResult, p.session_id,
                                       response_payload);
    if (cache_.enabled() && !p.cache_key.empty()) {
      cache_.Put(p.cache_key, std::move(response_payload));
    }
    delta->pir_queries += 1;
    delta->downlink_bytes += (*responses)[p.slot].size();
  };

  auto answer_group = [&](size_t gbegin, size_t gend) {
    common::ScopedAnswerPath answer_path;
    for (size_t g = gbegin; g < gend; ++g) {
      const size_t shard = groups[g].first;
      const std::vector<size_t>& indices = groups[g].second;
      std::vector<core::PirBatchItem> items;
      items.reserve(indices.size());
      for (size_t i : indices) {
        items.push_back(core::PirBatchItem{collector.pending[i].bucket,
                                           &collector.pending[i].payload.query});
      }
      ServerStats delta;
      core::RetrievalCosts costs;
      crypto::PirBatchStats stats;
      auto batch =
          engines.sharded_pir != nullptr
              ? engines.sharded_pir->AnswerBatch(shard, items, &costs, &stats)
              : engines.pir->AnswerBatch(items, &costs, &stats);
      if (batch.ok()) {
        for (size_t j = 0; j < indices.size(); ++j) {
          finalize(collector.pending[indices[j]], (*batch)[j], &delta);
        }
        delta.pir_batch_sweeps = stats.sweeps;
        delta.pir_batched_queries = stats.queries;
        delta.pir_batch_budget_splits = stats.budget_splits;
      } else {
        // The shared sweep is all-or-nothing per group; re-answer each
        // member serially so one malformed query yields one error frame
        // instead of poisoning its whole group.
        costs = core::RetrievalCosts{};
        for (size_t i : indices) {
          PendingPir& p = collector.pending[i];
          auto single =
              engines.sharded_pir != nullptr
                  ? engines.sharded_pir->Answer(shard, p.bucket,
                                                p.payload.query, &costs)
                  : engines.pir->Answer(p.bucket, p.payload.query, &costs);
          if (single.ok()) {
            finalize(p, *single, &delta);
          } else {
            (*responses)[p.slot] = EncodeFrame(FrameKind::kError, p.session_id,
                                               EncodeError(single.status()));
            delta.errors += 1;
            delta.downlink_bytes += (*responses)[p.slot].size();
          }
        }
      }
      delta.server_cpu_ms += costs.server_cpu_ms;
      delta.server_io_ms += costs.server_io_ms;
      MergeDelta(delta);
    }
  };
  // Distinct shards touch distinct engines, so groups answer concurrently;
  // each group's intra-sweep row parallelism still arrives through the
  // engines' own nested pool regions.
  if (pool_ != nullptr && groups.size() > 1) {
    pool_->ParallelFor(0, groups.size(), /*min_grain=*/1, answer_group);
  } else {
    answer_group(0, groups.size());
  }
}

EmbellishServer::RequestOutcome EmbellishServer::HandleTopK(
    const EpochEngines& engines, const Frame& frame) {
  auto query = DecodeTopKQuery(frame.payload);
  if (!query.ok()) return ErrorOutcome(frame.session_id, query.status());

  RequestOutcome outcome;
  // Plaintext top-k is session-independent, so it shares the global keying
  // (and per-request re-framing) the PIR path uses.
  std::string key;
  if (cache_.enabled()) {
    key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                 /*session_id=*/0, /*epoch=*/0,
                                 engines.epoch->epoch(), frame.payload);
    std::vector<uint8_t> cached_payload;
    if (cache_.Get(key, &cached_payload)) {
      outcome.response = EncodeFrame(FrameKind::kTopKResult, frame.session_id,
                                     cached_payload);
      outcome.delta.topk_queries = 1;
      return outcome;
    }
  }

  CpuStopwatch cpu;
  std::vector<index::ScoredDoc> top;
  if (engines.sharded_pr != nullptr) {
    // Epoch-aware fan-out with impact-bound shard skipping: shards whose
    // stored bound proves them outside the top k are never visited, and
    // the result bytes are still bit-identical to the monolithic
    // evaluation (the skip guard is strict; see EvaluateTopKEpoch).
    index::EvalStats eval_stats;
    top = index::EvaluateTopKEpoch(*engines.epoch, query->terms, query->k,
                                   pool_, &eval_stats,
                                   options_.shard_threads);
    outcome.delta.topk_shards_visited = eval_stats.shards_visited;
    outcome.delta.topk_shards_skipped = eval_stats.shards_skipped;
  } else {
    // Full accumulation, not Figure 10 early termination: wire responses
    // must be configuration-independent so a coordinator merge over slice
    // servers is bit-identical to any monolithic answer, and the
    // early-terminated scores are order-dependent lower bounds.
    top = index::EvaluateFull(*engines.serve_index, query->terms);
    if (top.size() > query->k) top.resize(query->k);
    outcome.delta.topk_shards_visited = 1;
  }
  std::vector<uint8_t> response_payload = EncodeTopKResult(top);
  outcome.response = EncodeFrame(FrameKind::kTopKResult, frame.session_id,
                                 response_payload);
  if (cache_.enabled()) cache_.Put(key, std::move(response_payload));
  outcome.delta.topk_queries = 1;
  outcome.delta.server_cpu_ms = cpu.ElapsedMillis();
  return outcome;
}

}  // namespace embellish::server
