#include "server/embellish_server.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "core/wire_format.h"
#include "index/topk.h"
#include "server/async_frontend.h"

namespace embellish::server {

std::unique_ptr<index::InvertedIndex> EmbellishServer::BuildSliceIndex(
    const index::InvertedIndex& index, const EmbellishServerOptions& options) {
  if (options.shard_slice == SIZE_MAX) return nullptr;
  // Slice mode composes with a ShardCoordinator, not with in-process
  // sharding; an invalid configuration serves the full index instead.
  if (options.shard_count > 1) return nullptr;
  if (options.shard_slice_count == 0 ||
      options.shard_slice >= options.shard_slice_count) {
    return nullptr;
  }
  index::ShardingOptions sharding;
  sharding.shard_count = options.shard_slice_count;
  sharding.partition = options.shard_partition;
  auto sharded = index::ShardedIndex::Build(index, sharding);
  if (!sharded.ok()) return nullptr;
  return std::make_unique<index::InvertedIndex>(
      sharded->shard(options.shard_slice));
}

EmbellishServer::EmbellishServer(const index::InvertedIndex* index,
                                 const core::BucketOrganization* buckets,
                                 const storage::StorageLayout* layout,
                                 const EmbellishServerOptions& options,
                                 ThreadPool* pool)
    : options_(options),
      slice_index_(BuildSliceIndex(*index, options)),
      slice_layout_(slice_index_ != nullptr && layout != nullptr
                        ? std::make_unique<storage::StorageLayout>(
                              storage::StorageLayout::Build(
                                  *slice_index_, buckets->buckets(),
                                  layout->policy(), options.disk))
                        : nullptr),
      serve_index_(slice_index_ != nullptr ? slice_index_.get() : index),
      // No caller pool, but intra-query shard parallelism requested: spawn
      // an owned executor of the requested width and serve everything from
      // it — the pre-executor dedicated-shard-pool behavior, minus the old
      // one-region-at-a-time collision.
      owned_pool_(pool == nullptr && options.shard_threads > 1 &&
                          options.shard_count > 1 && slice_index_ == nullptr
                      ? std::make_unique<ThreadPool>(options.shard_threads)
                      : nullptr),
      pool_(pool != nullptr ? pool : owned_pool_.get()),
      // The monolithic engines share the executor: their internal
      // ParallelFor regions (Algorithm 4 entries, PIR rows) nest inside the
      // batch region and compose instead of colliding (parallel outputs are
      // bit-identical to serial — the PR 1 equivalence tests).
      pr_server_(serve_index_, buckets,
                 slice_layout_ != nullptr ? slice_layout_.get() : layout,
                 options.disk, options.pr, pool_),
      pir_server_(serve_index_, buckets,
                  slice_layout_ != nullptr ? slice_layout_.get() : layout,
                  options.disk, pool_),
      bucket_count_(buckets->bucket_count()),
      sessions_(options.max_sessions, options.session_idle_frames),
      cache_(options.cache_capacity, options.cache_max_bytes) {
  if (slice_index_ != nullptr || options.shard_count <= 1) return;

  index::ShardingOptions sharding;
  sharding.shard_count = options.shard_count;
  sharding.partition = options.shard_partition;
  auto sharded = index::ShardedIndex::Build(*index, sharding);
  if (!sharded.ok()) return;  // unreachable for shard_count > 1; stay monolithic
  sharded_index_ = std::make_unique<index::ShardedIndex>(std::move(*sharded));

  const std::vector<storage::StorageLayout>* layouts = nullptr;
  if (layout != nullptr) {
    shard_layouts_ = core::BuildShardLayouts(*sharded_index_, *buckets,
                                             layout->policy(), options.disk);
    layouts = &shard_layouts_;
  }
  // Shard fan-outs run on the shared executor (nested inside batch regions
  // when batched); shard_threads survives as the per-query concurrency cap.
  sharded_pr_ = std::make_unique<core::ShardedPrivateRetrievalServer>(
      sharded_index_.get(), buckets, layouts, options.disk, options.pr,
      pool_, options.shard_threads);
  sharded_pir_ = std::make_unique<core::ShardedPirRetrievalServer>(
      sharded_index_.get(), buckets, layouts, options.disk, pool_,
      options.shard_threads);
  shard_pir_mu_.reserve(sharded_index_->shard_count());
  for (size_t s = 0; s < sharded_index_->shard_count(); ++s) {
    shard_pir_mu_.push_back(std::make_unique<std::mutex>());
  }
}

void EmbellishServer::MergeDelta(const ServerStats& d) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats& t = totals_;
  t.frames += d.frames;
  t.hellos += d.hellos;
  t.queries += d.queries;
  t.pir_queries += d.pir_queries;
  t.topk_queries += d.topk_queries;
  t.errors += d.errors;
  t.shed += d.shed;
  // cache_hits/cache_misses are not per-request deltas; stats() snapshots
  // them straight from the ResponseCache's own counters.
  t.uplink_bytes += d.uplink_bytes;
  t.downlink_bytes += d.downlink_bytes;
  t.server_cpu_ms += d.server_cpu_ms;
  t.server_io_ms += d.server_io_ms;
}

size_t EmbellishServer::AcquireInflight(size_t want) {
  if (options_.max_inflight == 0) return want;
  size_t current = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t room = options_.max_inflight > current
                            ? options_.max_inflight - current
                            : 0;
    const size_t grant = std::min(want, room);
    if (grant == 0) return 0;
    if (inflight_.compare_exchange_weak(current, current + grant,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return grant;
    }
  }
}

void EmbellishServer::ReleaseInflight(size_t granted) {
  if (options_.max_inflight == 0 || granted == 0) return;
  inflight_.fetch_sub(granted, std::memory_order_acq_rel);
}

EmbellishServer::RequestOutcome EmbellishServer::BusyOutcome() {
  RequestOutcome outcome = ErrorOutcome(
      0, Status::Busy("server in-flight budget exhausted; request shed"));
  outcome.delta.shed = 1;
  outcome.delta.frames = 1;
  outcome.delta.downlink_bytes = outcome.response.size();
  return outcome;
}

std::vector<uint8_t> EmbellishServer::HandleFrame(
    const std::vector<uint8_t>& request) {
  RequestOutcome outcome;
  if (AcquireInflight(1) == 0) {
    outcome = BusyOutcome();
  } else {
    outcome = ProcessOne(request);
    ReleaseInflight(1);
  }
  MergeDelta(outcome.delta);
  return std::move(outcome.response);
}

std::vector<std::vector<uint8_t>> EmbellishServer::HandleBatch(
    const std::vector<std::vector<uint8_t>>& requests) {
  std::vector<std::vector<uint8_t>> responses(requests.size());
  // Admission is reserved for the whole batch up front: the first `granted`
  // requests are processed, the rest are shed with typed kBusy frames — a
  // deterministic suffix, so the client knows exactly which to resend.
  const size_t granted = AcquireInflight(requests.size());
  auto handle_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      RequestOutcome outcome =
          i < granted ? ProcessOne(requests[i]) : BusyOutcome();
      MergeDelta(outcome.delta);
      responses[i] = std::move(outcome.response);
    }
  };
  // Tiny batches run inline: at 1-2 requests the region bookkeeping and
  // worker wake-ups cost more than the overlap buys (the BENCH_server.json
  // batched-path regression), and any intra-request parallelism still
  // arrives through the engines' own nested regions.
  constexpr size_t kInlineBatchMax = 2;
  if (pool_ != nullptr && requests.size() > kInlineBatchMax) {
    pool_->ParallelFor(0, requests.size(), /*min_grain=*/1, handle_range);
  } else {
    handle_range(0, requests.size());
  }
  ReleaseInflight(granted);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++totals_.batches;
  return responses;
}

Result<std::unique_ptr<AsyncFrontEnd>> EmbellishServer::ServeAsync(
    int listen_fd, EventLoop* loop) {
  return ServeAsync(listen_fd, loop, AsyncFrontEndOptions{});
}

Result<std::unique_ptr<AsyncFrontEnd>> EmbellishServer::ServeAsync(
    int listen_fd, EventLoop* loop, const AsyncFrontEndOptions& options) {
  return AsyncFrontEnd::Create(
      listen_fd, loop,
      [this](const std::vector<std::vector<uint8_t>>& requests) {
        return HandleBatch(requests);
      },
      options);
}

size_t EmbellishServer::session_count() const { return sessions_.size(); }

ServerStats EmbellishServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats snapshot = totals_;
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  snapshot.sessions_expired = sessions_.expired_total();
  return snapshot;
}

EmbellishServer::RequestOutcome EmbellishServer::ErrorOutcome(
    uint64_t session_id, const Status& status) {
  RequestOutcome outcome;
  outcome.response =
      EncodeFrame(FrameKind::kError, session_id, EncodeError(status));
  outcome.delta.errors = 1;
  return outcome;
}


EmbellishServer::RequestOutcome EmbellishServer::ProcessOne(
    const std::vector<uint8_t>& request) {
  frame_clock_.fetch_add(1, std::memory_order_relaxed);
  RequestOutcome outcome;
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    outcome = ErrorOutcome(0, frame.status());
  } else {
    // Any decodable frame naming a registered session counts as activity
    // for the idle-expiry sweep, whatever its kind: PIR- or top-k-only
    // sessions must not lose their registered key mid-stream.
    sessions_.Touch(frame->session_id,
                    frame_clock_.load(std::memory_order_relaxed));
    switch (frame->kind) {
      case FrameKind::kHello:
        outcome = HandleHello(*frame);
        break;
      case FrameKind::kQuery:
        outcome = HandleQuery(*frame);
        break;
      case FrameKind::kPirQuery:
        outcome = HandlePirQuery(*frame);
        break;
      case FrameKind::kTopKQuery:
        outcome = HandleTopK(*frame);
        break;
      default:
        outcome = ErrorOutcome(
            frame->session_id,
            Status::InvalidArgument("frame kind is not a request"));
        break;
    }
  }
  outcome.delta.frames += 1;
  outcome.delta.uplink_bytes += request.size();
  outcome.delta.downlink_bytes += outcome.response.size();
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandleHello(
    const Frame& frame) {
  auto pk = DecodeHello(frame.payload);
  if (!pk.ok()) return ErrorOutcome(frame.session_id, pk.status());
  if (!sessions_.Register(
          frame.session_id,
          std::make_shared<const crypto::BenalohPublicKey>(std::move(*pk)),
          frame_clock_.load(std::memory_order_relaxed))) {
    return ErrorOutcome(frame.session_id,
                        Status::FailedPrecondition(
                            "session table full; hello refused"));
  }
  RequestOutcome outcome;
  // The hello-ok advertises the retrieval topology: a client on a sharded
  // server must know shard_count and bucket_count to address PIR
  // executions (and to know it has to query every shard).
  outcome.response =
      EncodeFrame(FrameKind::kHelloOk, frame.session_id,
                  EncodeHelloOk(shard_count(), bucket_count_));
  outcome.delta.hellos = 1;
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandleQuery(
    const Frame& frame) {
  SessionTable::Entry session = sessions_.Find(frame.session_id);
  if (session.pk == nullptr) {
    return ErrorOutcome(frame.session_id,
                        Status::FailedPrecondition(
                            "session has not sent a hello frame"));
  }
  const crypto::BenalohPublicKey& pk = *session.pk;
  RequestOutcome outcome;
  std::string key;
  if (cache_.enabled()) {  // key building copies the payload; skip when off
    key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                 frame.session_id, session.epoch,
                                 frame.payload);
    if (cache_.Get(key, &outcome.response)) {
      outcome.delta.queries = 1;
      return outcome;
    }
  }

  auto query = core::DecodeQuery(frame.payload, pk);
  if (!query.ok()) return ErrorOutcome(frame.session_id, query.status());

  core::RetrievalCosts costs;
  // The sharded engine's merged candidate set is bit-identical to the
  // monolithic server's, so the encoded response frame (and any cached
  // copy) does not depend on the shard configuration.
  auto result = sharded_pr_ != nullptr
                    ? sharded_pr_->Process(*query, pk, &costs)
                    : pr_server_.Process(*query, pk, &costs);
  if (!result.ok()) return ErrorOutcome(frame.session_id, result.status());

  outcome.response = EncodeFrame(FrameKind::kResult, frame.session_id,
                                 core::EncodeResult(*result, pk));
  if (cache_.enabled()) cache_.Put(key, outcome.response);
  outcome.delta.queries = 1;
  outcome.delta.server_cpu_ms = costs.server_cpu_ms;
  outcome.delta.server_io_ms = costs.server_io_ms;
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandlePirQuery(
    const Frame& frame) {
  auto payload = DecodePirQuery(frame.payload);
  if (!payload.ok()) return ErrorOutcome(frame.session_id, payload.status());

  // When sharded, the frame's bucket field is shard-qualified:
  // shard * bucket_count + bucket (see PirBucketField).
  const bool sharded = sharded_pir_ != nullptr;
  if (sharded && bucket_count_ == 0) {
    return ErrorOutcome(frame.session_id,
                        Status::OutOfRange("server has no buckets"));
  }
  // UINT32_MAX is the encoder's saturation sentinel for a shard-qualified
  // field that overflowed the u32 wire width; reject it even when it would
  // decode to an in-range pair, so an overflowed address can never alias.
  if (sharded && payload->bucket == UINT32_MAX) {
    return ErrorOutcome(
        frame.session_id,
        Status::OutOfRange("shard-qualified bucket field saturated"));
  }
  const size_t shard = sharded ? payload->bucket / bucket_count_ : 0;
  const size_t bucket = sharded ? payload->bucket % bucket_count_
                                : payload->bucket;

  RequestOutcome outcome;
  // PIR answers depend only on the payload (the modulus travels inside it),
  // never on any registered key, so entries are keyed *globally* — session
  // and epoch components pinned to zero — and one session's answer serves
  // every session that replays the same payload. Because the response frame
  // header embeds the requester's session id, the cache stores the response
  // payload and the frame is rebuilt per request: bit-identical bytes for
  // the same session, correctly addressed for every other. Per-shard
  // answers still occupy distinct entries because the payload embeds the
  // shard-qualified bucket field. (PR entries, by contrast, stay keyed by
  // session *and* registration epoch — their ciphertexts are bound to the
  // session's key.)
  std::string key;
  if (cache_.enabled()) {
    key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                 /*session_id=*/0, /*epoch=*/0, frame.payload);
    std::vector<uint8_t> cached_payload;
    if (cache_.Get(key, &cached_payload)) {
      outcome.response = EncodeFrame(FrameKind::kPirResult, frame.session_id,
                                     cached_payload);
      outcome.delta.pir_queries = 1;
      return outcome;
    }
  }

  core::RetrievalCosts costs;
  Result<crypto::PirResponse> response = [&]() -> Result<crypto::PirResponse> {
    if (sharded) {
      if (shard >= sharded_pir_->shard_count()) {
        return Status::OutOfRange("shard-qualified bucket out of range");
      }
      // Per-shard lock: requests addressing different shards build and
      // consult their lazy bucket matrices concurrently.
      std::lock_guard<std::mutex> lock(*shard_pir_mu_[shard]);
      return sharded_pir_->Answer(shard, bucket, payload->query, &costs);
    }
    // The lazy bucket-matrix cache inside PirRetrievalServer is not
    // thread-safe; serialize the whole execution.
    std::lock_guard<std::mutex> lock(pir_mu_);
    return pir_server_.Answer(bucket, payload->query, &costs);
  }();
  if (!response.ok()) return ErrorOutcome(frame.session_id, response.status());

  const size_t value_size = (payload->query.n.BitLength() + 7) / 8;
  std::vector<uint8_t> response_payload =
      EncodePirResponse(*response, value_size);
  outcome.response = EncodeFrame(FrameKind::kPirResult, frame.session_id,
                                 response_payload);
  if (cache_.enabled()) cache_.Put(key, std::move(response_payload));
  outcome.delta.pir_queries = 1;
  outcome.delta.server_cpu_ms = costs.server_cpu_ms;
  outcome.delta.server_io_ms = costs.server_io_ms;
  return outcome;
}

EmbellishServer::RequestOutcome EmbellishServer::HandleTopK(
    const Frame& frame) {
  auto query = DecodeTopKQuery(frame.payload);
  if (!query.ok()) return ErrorOutcome(frame.session_id, query.status());

  RequestOutcome outcome;
  // Plaintext top-k is session-independent, so it shares the global keying
  // (and per-request re-framing) the PIR path uses.
  std::string key;
  if (cache_.enabled()) {
    key = ResponseCache::MakeKey(static_cast<uint8_t>(frame.kind),
                                 /*session_id=*/0, /*epoch=*/0, frame.payload);
    std::vector<uint8_t> cached_payload;
    if (cache_.Get(key, &cached_payload)) {
      outcome.response = EncodeFrame(FrameKind::kTopKResult, frame.session_id,
                                     cached_payload);
      outcome.delta.topk_queries = 1;
      return outcome;
    }
  }

  CpuStopwatch cpu;
  std::vector<index::ScoredDoc> top;
  if (sharded_index_ != nullptr) {
    top = index::EvaluateTopKSharded(*sharded_index_, query->terms, query->k,
                                     pool_, /*stats=*/nullptr,
                                     options_.shard_threads);
  } else {
    // Full accumulation, not Figure 10 early termination: wire responses
    // must be configuration-independent so a coordinator merge over slice
    // servers is bit-identical to any monolithic answer, and the
    // early-terminated scores are order-dependent lower bounds.
    top = index::EvaluateFull(*serve_index_, query->terms);
    if (top.size() > query->k) top.resize(query->k);
  }
  std::vector<uint8_t> response_payload = EncodeTopKResult(top);
  outcome.response = EncodeFrame(FrameKind::kTopKResult, frame.session_id,
                                 response_payload);
  if (cache_.enabled()) cache_.Put(key, std::move(response_payload));
  outcome.delta.topk_queries = 1;
  outcome.delta.server_cpu_ms = cpu.ElapsedMillis();
  return outcome;
}

}  // namespace embellish::server
