// Bucket-set keyed LRU cache of encoded response frames.
//
// Why caching is sound here: a genuine term's decoys are a deterministic
// function of the bucket organization (core/session.h), so a term recurring
// within a session always produces the same co-bucket decoy set. The
// SessionClient exploits that session-consistency property by reusing the
// encoded uplink bytes for a repeated genuine-term set — re-encrypting the
// indicators would change only ciphertext randomness, not what the adversary
// learns (the observed term multiset is already identical). Identical request
// bytes imply a bit-identical response, so the server may answer from cache.
//
// The key is therefore (kind, session, payload bytes): for query frames the
// payload determines the touched bucket set and the indicator assignment, so
// this coincides with keying by the session's recurring bucket sets while
// remaining exact — two requests collide only if byte-equal, and the session
// id keeps ciphertexts under different public keys apart.
//
// Thread safety: all operations take an internal mutex; the cache is shared
// by every worker of a server batch.

#ifndef EMBELLISH_SERVER_RESPONSE_CACHE_H_
#define EMBELLISH_SERVER_RESPONSE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace embellish::server {

/// \brief Exact-match LRU cache mapping request bytes to response frames.
class ResponseCache {
 public:
  /// \brief Keeps at most `capacity` entries totalling at most
  ///        `max_total_bytes` of key + response bytes; 0 entries disables
  ///        the cache (every Get misses, Put is a no-op). Entry sizes are
  ///        attacker-controlled (the key embeds the request payload), so
  ///        the byte budget — not just the entry count — is what actually
  ///        bounds the memory a hostile client can pin; an entry larger
  ///        than the whole budget is simply not cached.
  explicit ResponseCache(size_t capacity,
                         size_t max_total_bytes = 64u << 20);

  /// \brief True when the cache can ever hold an entry; callers skip key
  ///        construction (a payload-sized copy) entirely when disabled.
  bool enabled() const { return capacity_ > 0; }

  /// \brief Builds the lookup key for a request frame. `epoch` distinguishes
  ///        cache generations that identical request bytes must not cross —
  ///        the server passes the session's registration epoch so responses
  ///        encrypted under a superseded public key are never replayed after
  ///        a re-hello. Session-independent answers (PIR executions and
  ///        plaintext top-k, which never touch a registered key) pin both
  ///        `session_id` and `epoch` to zero so one session's entry serves
  ///        every session replaying the same payload; those paths cache the
  ///        response payload and rebuild the frame per request, because the
  ///        frame header embeds the requester's session id. On a sharded
  ///        server the entries are keyed per shard through the payload
  ///        itself: a kPirQuery payload embeds the shard-qualified bucket
  ///        field, so per-shard answers occupy distinct entries without any
  ///        extra key component.
  ///
  ///        `database_epoch` is the orthogonal second generation axis: the
  ///        IndexCatalog epoch the answer was computed against. A delta or
  ///        reshard cutover bumps it, so every answer cached under the
  ///        superseded snapshot misses naturally — without flushing entries
  ///        for other generations and without touching the
  ///        registration-epoch (re-hello) invalidation, which keeps its
  ///        existing behavior.
  static std::string MakeKey(uint8_t kind, uint64_t session_id, uint64_t epoch,
                             uint64_t database_epoch,
                             const std::vector<uint8_t>& payload);

  /// \brief On hit, copies the cached response frame into `out` and marks
  ///        the entry most-recently used.
  bool Get(const std::string& key, std::vector<uint8_t>* out);

  /// \brief Inserts (or refreshes) an entry, evicting the least-recently
  ///        used one when over capacity.
  void Put(const std::string& key, std::vector<uint8_t> response);

  size_t size() const;
  size_t total_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using Entry = std::pair<std::string, std::vector<uint8_t>>;

  // The key string is resident twice (list entry + index map key), so it
  // counts double against the byte budget.
  static size_t EntryBytes(const Entry& e) {
    return 2 * e.first.size() + e.second.size();
  }
  void EvictOverBudget();  // requires mu_ held

  const size_t capacity_;
  const size_t max_total_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t total_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_RESPONSE_CACHE_H_
