#include "server/shard_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/endian.h"
#include "common/strings.h"
#include "server/io_util.h"

namespace embellish::server {

// --- ShardEndpoint ----------------------------------------------------------

ShardEndpoint::ShardEndpoint(EmbellishServer* server, size_t shard_id)
    : server_(server), shard_id_(shard_id) {}

std::vector<uint8_t> ShardEndpoint::HandleFrame(
    const std::vector<uint8_t>& request) {
  auto error = [](const Status& status) {
    return EncodeFrame(FrameKind::kError, 0, EncodeError(status));
  };

  // A slice misconfiguration (slice >= count, or combined with in-process
  // sharding) falls back to serving the full index; behind a coordinator
  // that would merge overlapping document sets into silently wrong
  // answers. Refuse every request instead so the handshake fails loudly.
  if (server_->slice_config_invalid()) {
    return error(Status::FailedPrecondition(StringPrintf(
        "shard %zu's server has an invalid slice configuration", shard_id_)));
  }

  auto frame = DecodeFrame(request);
  if (!frame.ok()) return error(frame.status());
  if (frame->kind != FrameKind::kShardRequest) {
    return error(Status::InvalidArgument(
        "shard endpoint accepts only shard-request envelopes"));
  }
  auto envelope = DecodeShardEnvelope(frame->payload);
  if (!envelope.ok()) return error(envelope.status());
  if (envelope->shard_id != shard_id_) {
    return error(Status::FailedPrecondition(StringPrintf(
        "envelope addresses shard %zu but this endpoint serves shard %zu",
        envelope->shard_id, shard_id_)));
  }
  {
    // Fencing: adopt higher epochs (a new coordinator took over), refuse
    // lower ones (a superseded coordinator must not keep driving us).
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (envelope->epoch < last_epoch_) {
      return error(Status::FailedPrecondition(StringPrintf(
          "stale coordinator epoch %llu (shard has seen %llu)",
          static_cast<unsigned long long>(envelope->epoch),
          static_cast<unsigned long long>(last_epoch_))));
    }
    last_epoch_ = envelope->epoch;
  }

  std::vector<uint8_t> inner_response;
  if (envelope->inner.empty()) {
    // Ping: liveness + topology discovery. A slice server reports itself
    // monolithic (shard_count 1) — the coordinator owns the global fan-out.
    inner_response =
        EncodeFrame(FrameKind::kHelloOk, 0,
                    EncodeHelloOk(server_->shard_count(),
                                  server_->bucket_count()));
  } else {
    inner_response = server_->HandleFrame(envelope->inner);
  }
  return EncodeFrame(FrameKind::kShardResponse, frame->session_id,
                     EncodeShardEnvelope(shard_id_, envelope->epoch,
                                         envelope->seq, inner_response));
}

// --- TCP --------------------------------------------------------------------

namespace {

// Deadline-bounded connect (io_util): non-blocking connect + monotonic
// poll, then back to blocking mode for this blocking transport.
Result<int> ConnectLoopbackFd(const std::string& host, uint16_t port,
                              const TcpTransportOptions& options) {
  EMB_ASSIGN_OR_RETURN(
      int fd, ConnectWithDeadline(host, port, options.connect_timeout_ms));
  Status blocking = SetBlocking(fd);
  if (!blocking.ok()) {
    close(fd);
    return blocking;
  }
  return fd;
}

}  // namespace

TcpTransport::TcpTransport(std::string host, uint16_t port,
                           TcpTransportOptions options, int fd)
    : host_(std::move(host)), port_(port), options_(options), fd_(fd) {}

TcpTransport::~TcpTransport() { Disconnect(); }

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port,
    const TcpTransportOptions& options) {
  EMB_ASSIGN_OR_RETURN(int fd, ConnectLoopbackFd(host, port, options));
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(host, port, options, fd));
}

void TcpTransport::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status TcpTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  EMB_ASSIGN_OR_RETURN(fd_, ConnectLoopbackFd(host_, port_, options_));
  return Status::OK();
}

Result<std::vector<uint8_t>> TcpTransport::TrySend(
    const std::vector<uint8_t>& request) {
  // Each phase gets one whole-operation monotonic deadline: the write must
  // land within io_timeout_ms, and the response — however the peer paces
  // its bytes — within io_timeout_ms of the write completing.
  Status write_status = WriteAll(fd_, request.data(), request.size(),
                                 DeadlineFromNow(options_.io_timeout_ms));
  if (!write_status.ok()) {
    // Tear the connection down so the next call reconnects cleanly — a
    // half-written frame would desynchronize the stream.
    Disconnect();
    return write_status;
  }
  auto response = ReadFrameFd(fd_, kMaxTransportFrameBytes,
                              DeadlineFromNow(options_.io_timeout_ms));
  if (!response.ok()) Disconnect();
  return response;
}

Result<std::vector<uint8_t>> TcpTransport::RoundTrip(
    const std::vector<uint8_t>& request) {
  // A connection that was already pooled may be stale: the peer restarted
  // (or its kernel dropped the idle socket) between requests, and the
  // first syscall against it fails even though the shard is healthy again.
  // One transparent reconnect-and-resend absorbs that — shard requests are
  // idempotent and seq/epoch-fenced, so the duplicate send cannot
  // mis-merge. A connection established by this very call gets no retry:
  // the peer is down, not stale.
  const bool pooled = fd_ >= 0;
  EMB_RETURN_NOT_OK(EnsureConnected());
  auto response = TrySend(request);
  if (response.ok() || !pooled) return response;
  EMB_RETURN_NOT_OK(EnsureConnected());
  return TrySend(request);
}

Result<int> ListenOnLoopback(uint16_t* port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StringPrintf("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port != nullptr ? *port : 0);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0) {
    int err = errno;
    close(fd);
    return Status::IoError(StringPrintf("bind/listen: %s",
                                        std::strerror(err)));
  }
  if (port != nullptr) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      int err = errno;
      close(fd);
      return Status::IoError(StringPrintf("getsockname: %s",
                                          std::strerror(err)));
    }
    *port = ntohs(addr.sin_port);
  }
  return fd;
}

Status ServeShardConnections(int listen_fd, ShardEndpoint* endpoint) {
  // Backoff for fd exhaustion: repeated EMFILE/ENFILE must not spin a core
  // (accept fails instantly when the process is out of descriptors, so a
  // flat short sleep still burns ~100 wakeups/sec for the whole outage).
  // Doubles 10ms -> ~1s and resets on any successful accept.
  constexpr auto kBackoffFloor = std::chrono::milliseconds(10);
  constexpr auto kBackoffCeil = std::chrono::milliseconds(1000);
  auto backoff = kBackoffFloor;
  for (;;) {
    int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      // Transient accept failures must not kill a long-running shard
      // process: a peer that reset while queued (ECONNABORTED/EPROTO) or
      // a momentary fd shortage during a reconnect storm just retries.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, kBackoffCeil);
        continue;
      }
      // The normal shutdown path: the owner closed / shut down listen_fd.
      return Status::OK();
    }
    backoff = kBackoffFloor;
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    for (;;) {
      // No read deadline: a shard waits indefinitely for its coordinator's
      // next request (requests may also arrive pipelined from a
      // MultiplexedTransport; responses go back in request order, which is
      // exactly the order the multiplexer's seqs expect).
      auto request = ReadFrameFd(conn, kMaxTransportFrameBytes);
      if (!request.ok()) break;  // peer gone or hostile length; drop it
      std::vector<uint8_t> response = endpoint->HandleFrame(*request);
      if (!WriteAll(conn, response.data(), response.size()).ok()) break;
    }
    close(conn);
  }
}

// --- Fault injection --------------------------------------------------------

FaultyTransport::FaultyTransport(ShardTransport* inner,
                                 FaultyTransportOptions options)
    : inner_(inner), options_(std::move(options)), rng_(options_.seed) {}

size_t FaultyTransport::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.total();
}

FaultyTransportStats FaultyTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

TransportFault FaultyTransport::NextFaultLocked() {
  const size_t call = stats_.calls++;
  TransportFault fault = TransportFault::kNone;
  if (!options_.schedule.empty()) {
    if (call < options_.schedule.size()) {
      fault = options_.schedule[call];
    } else if (options_.cycle) {
      fault = options_.schedule[call % options_.schedule.size()];
    }
  } else if (options_.fault_rate > 0 && rng_.Bernoulli(options_.fault_rate)) {
    // kNone excluded: a drawn fault is a fault.
    fault = static_cast<TransportFault>(
        1 + rng_.Uniform(static_cast<uint64_t>(TransportFault::kDelay)));
  }
  switch (fault) {
    case TransportFault::kNone: break;
    case TransportFault::kDrop: ++stats_.drops; break;
    case TransportFault::kTruncate: ++stats_.truncations; break;
    case TransportFault::kBitFlip: ++stats_.bit_flips; break;
    case TransportFault::kReorder: ++stats_.reorders; break;
    case TransportFault::kDelay: ++stats_.delays; break;
  }
  return fault;
}

Result<std::vector<uint8_t>> FaultyTransport::MutateResponseLocked(
    TransportFault fault, Result<std::vector<uint8_t>> inner) {
  switch (fault) {
    case TransportFault::kNone:
    case TransportFault::kDelay:
      return inner;
    case TransportFault::kDrop:
      // The shard processed the request; its response never arrives. This
      // is what a timeout on a live-but-unreachable shard looks like.
      return Status::Unavailable("injected fault: response frame dropped");
    case TransportFault::kTruncate: {
      if (!inner.ok()) return inner;
      std::vector<uint8_t> response = std::move(*inner);
      // Chop strictly short of the full length so a scheduled truncation
      // always damages the frame (an intact delivery would make
      // "fault => typed error" assertions seed-dependent).
      if (!response.empty()) {
        response.resize(rng_.Uniform(response.size()));
      }
      return response;
    }
    case TransportFault::kBitFlip: {
      if (!inner.ok()) return inner;
      std::vector<uint8_t> response = std::move(*inner);
      if (!response.empty()) {
        const size_t bit = rng_.Uniform(response.size() * 8);
        response[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      return response;
    }
    case TransportFault::kReorder: {
      // Swap this response with the previously held one; the first reorder
      // (nothing held yet) degrades to a drop. The stale response carries a
      // stale envelope seq, which the coordinator must reject.
      if (!inner.ok()) return inner;
      std::vector<uint8_t> out;
      const bool had_held = has_held_;
      if (had_held) out = std::move(held_);
      held_ = std::move(*inner);
      has_held_ = true;
      if (!had_held) {
        return Status::Unavailable(
            "injected fault: response reordered past its request");
      }
      return out;
    }
  }
  return Status::Internal("unreachable fault kind");
}

Result<std::vector<uint8_t>> FaultyTransport::RoundTrip(
    const std::vector<uint8_t>& request) {
  // The blocking path keeps the pre-async contract: one mutex across the
  // whole inner round trip, so the decorator also serializes.
  std::lock_guard<std::mutex> lock(mu_);
  const TransportFault fault = NextFaultLocked();
  if (fault == TransportFault::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.delay_ms));
  }
  return MutateResponseLocked(fault, inner_->RoundTrip(request));
}

void FaultyTransport::SubmitRoundTrip(const std::vector<uint8_t>& request,
                                      RoundTripCompletion done) {
  TransportFault fault;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fault = NextFaultLocked();
  }
  inner_->SubmitRoundTrip(
      request, [this, fault, done = std::move(done)](
                   Result<std::vector<uint8_t>> inner) mutable {
        Result<std::vector<uint8_t>> mutated = [&] {
          std::lock_guard<std::mutex> lock(mu_);
          return MutateResponseLocked(fault, std::move(inner));
        }();
        if (fault == TransportFault::kDelay && options_.delay_ms > 0) {
          // The inner completion typically runs on an event-loop thread; a
          // sleep there would delay every other in-flight trip too, which
          // is not what kDelay models. Deliver late from a detached thread.
          std::thread([delay = options_.delay_ms, done = std::move(done),
                       m = std::move(mutated)]() mutable {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
            done(std::move(m));
          }).detach();
          return;
        }
        done(std::move(mutated));
      });
}

}  // namespace embellish::server
