#include "server/shard_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/endian.h"
#include "common/strings.h"

namespace embellish::server {

// --- ShardEndpoint ----------------------------------------------------------

ShardEndpoint::ShardEndpoint(EmbellishServer* server, size_t shard_id)
    : server_(server), shard_id_(shard_id) {}

std::vector<uint8_t> ShardEndpoint::HandleFrame(
    const std::vector<uint8_t>& request) {
  auto error = [](const Status& status) {
    return EncodeFrame(FrameKind::kError, 0, EncodeError(status));
  };

  // A slice misconfiguration (slice >= count, or combined with in-process
  // sharding) falls back to serving the full index; behind a coordinator
  // that would merge overlapping document sets into silently wrong
  // answers. Refuse every request instead so the handshake fails loudly.
  if (server_->slice_config_invalid()) {
    return error(Status::FailedPrecondition(StringPrintf(
        "shard %zu's server has an invalid slice configuration", shard_id_)));
  }

  auto frame = DecodeFrame(request);
  if (!frame.ok()) return error(frame.status());
  if (frame->kind != FrameKind::kShardRequest) {
    return error(Status::InvalidArgument(
        "shard endpoint accepts only shard-request envelopes"));
  }
  auto envelope = DecodeShardEnvelope(frame->payload);
  if (!envelope.ok()) return error(envelope.status());
  if (envelope->shard_id != shard_id_) {
    return error(Status::FailedPrecondition(StringPrintf(
        "envelope addresses shard %zu but this endpoint serves shard %zu",
        envelope->shard_id, shard_id_)));
  }
  {
    // Fencing: adopt higher epochs (a new coordinator took over), refuse
    // lower ones (a superseded coordinator must not keep driving us).
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (envelope->epoch < last_epoch_) {
      return error(Status::FailedPrecondition(StringPrintf(
          "stale coordinator epoch %llu (shard has seen %llu)",
          static_cast<unsigned long long>(envelope->epoch),
          static_cast<unsigned long long>(last_epoch_))));
    }
    last_epoch_ = envelope->epoch;
  }

  std::vector<uint8_t> inner_response;
  if (envelope->inner.empty()) {
    // Ping: liveness + topology discovery. A slice server reports itself
    // monolithic (shard_count 1) — the coordinator owns the global fan-out.
    inner_response =
        EncodeFrame(FrameKind::kHelloOk, 0,
                    EncodeHelloOk(server_->shard_count(),
                                  server_->bucket_count()));
  } else {
    inner_response = server_->HandleFrame(envelope->inner);
  }
  return EncodeFrame(FrameKind::kShardResponse, frame->session_id,
                     EncodeShardEnvelope(shard_id_, envelope->epoch,
                                         envelope->seq, inner_response));
}

// --- TCP --------------------------------------------------------------------

namespace {

Status SetIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(StringPrintf("setsockopt timeout: %s",
                                        std::strerror(errno)));
  }
  return Status::OK();
}

Result<int> ConnectLoopbackFd(const std::string& host, uint16_t port,
                              const TcpTransportOptions& options) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StringPrintf("socket: %s",
                                            std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument(
        StringPrintf("not a numeric IPv4 address: %s", host.c_str()));
  }
  Status timeout_status = SetIoTimeout(fd, options.connect_timeout_ms);
  if (!timeout_status.ok()) {
    close(fd);
    return timeout_status;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    close(fd);
    return Status::Unavailable(StringPrintf("connect %s:%u: %s", host.c_str(),
                                            port, std::strerror(err)));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeout_status = SetIoTimeout(fd, options.io_timeout_ms);
  if (!timeout_status.ok()) {
    close(fd);
    return timeout_status;
  }
  return fd;
}

// MSG_NOSIGNAL: a peer that died mid-write must produce EPIPE, not SIGPIPE.
Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable(StringPrintf(
          "send failed after %zu/%zu bytes: %s", sent, size,
          n < 0 ? std::strerror(errno) : "connection closed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = recv(fd, data + got, size - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable(StringPrintf(
          "recv failed after %zu/%zu bytes: %s", got, size,
          n < 0 ? std::strerror(errno) : "connection closed"));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads one complete frame: the fixed header first (whose declared payload
// size is bounded before any allocation), then the payload.
Result<std::vector<uint8_t>> ReadFrame(int fd) {
  std::vector<uint8_t> bytes(kFrameHeaderBytes);
  EMB_RETURN_NOT_OK(ReadAll(fd, bytes.data(), kFrameHeaderBytes));
  const size_t payload_size = GetU32(bytes.data() + 16);
  if (payload_size > kMaxTransportFrameBytes - kFrameHeaderBytes) {
    return Status::Unavailable(StringPrintf(
        "peer declared an oversized %zu-byte frame payload", payload_size));
  }
  bytes.resize(kFrameHeaderBytes + payload_size);
  EMB_RETURN_NOT_OK(
      ReadAll(fd, bytes.data() + kFrameHeaderBytes, payload_size));
  return bytes;
}

}  // namespace

TcpTransport::TcpTransport(std::string host, uint16_t port,
                           TcpTransportOptions options, int fd)
    : host_(std::move(host)), port_(port), options_(options), fd_(fd) {}

TcpTransport::~TcpTransport() { Disconnect(); }

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port,
    const TcpTransportOptions& options) {
  EMB_ASSIGN_OR_RETURN(int fd, ConnectLoopbackFd(host, port, options));
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(host, port, options, fd));
}

void TcpTransport::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status TcpTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  EMB_ASSIGN_OR_RETURN(fd_, ConnectLoopbackFd(host_, port_, options_));
  return Status::OK();
}

Result<std::vector<uint8_t>> TcpTransport::TrySend(
    const std::vector<uint8_t>& request) {
  Status write_status = WriteAll(fd_, request.data(), request.size());
  if (!write_status.ok()) {
    // Tear the connection down so the next call reconnects cleanly — a
    // half-written frame would desynchronize the stream.
    Disconnect();
    return write_status;
  }
  auto response = ReadFrame(fd_);
  if (!response.ok()) Disconnect();
  return response;
}

Result<std::vector<uint8_t>> TcpTransport::RoundTrip(
    const std::vector<uint8_t>& request) {
  // A connection that was already pooled may be stale: the peer restarted
  // (or its kernel dropped the idle socket) between requests, and the
  // first syscall against it fails even though the shard is healthy again.
  // One transparent reconnect-and-resend absorbs that — shard requests are
  // idempotent and seq/epoch-fenced, so the duplicate send cannot
  // mis-merge. A connection established by this very call gets no retry:
  // the peer is down, not stale.
  const bool pooled = fd_ >= 0;
  EMB_RETURN_NOT_OK(EnsureConnected());
  auto response = TrySend(request);
  if (response.ok() || !pooled) return response;
  EMB_RETURN_NOT_OK(EnsureConnected());
  return TrySend(request);
}

Result<int> ListenOnLoopback(uint16_t* port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StringPrintf("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port != nullptr ? *port : 0);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0) {
    int err = errno;
    close(fd);
    return Status::IoError(StringPrintf("bind/listen: %s",
                                        std::strerror(err)));
  }
  if (port != nullptr) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      int err = errno;
      close(fd);
      return Status::IoError(StringPrintf("getsockname: %s",
                                          std::strerror(err)));
    }
    *port = ntohs(addr.sin_port);
  }
  return fd;
}

Status ServeShardConnections(int listen_fd, ShardEndpoint* endpoint) {
  // Backoff for fd exhaustion: repeated EMFILE/ENFILE must not spin a core
  // (accept fails instantly when the process is out of descriptors, so a
  // flat short sleep still burns ~100 wakeups/sec for the whole outage).
  // Doubles 10ms -> ~1s and resets on any successful accept.
  constexpr auto kBackoffFloor = std::chrono::milliseconds(10);
  constexpr auto kBackoffCeil = std::chrono::milliseconds(1000);
  auto backoff = kBackoffFloor;
  for (;;) {
    int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      // Transient accept failures must not kill a long-running shard
      // process: a peer that reset while queued (ECONNABORTED/EPROTO) or
      // a momentary fd shortage during a reconnect storm just retries.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, kBackoffCeil);
        continue;
      }
      // The normal shutdown path: the owner closed / shut down listen_fd.
      return Status::OK();
    }
    backoff = kBackoffFloor;
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    for (;;) {
      auto request = ReadFrame(conn);
      if (!request.ok()) break;  // peer gone or hostile length; drop it
      std::vector<uint8_t> response = endpoint->HandleFrame(*request);
      if (!WriteAll(conn, response.data(), response.size()).ok()) break;
    }
    close(conn);
  }
}

// --- Fault injection --------------------------------------------------------

FaultyTransport::FaultyTransport(ShardTransport* inner,
                                 FaultyTransportOptions options)
    : inner_(inner), options_(std::move(options)), rng_(options_.seed) {}

size_t FaultyTransport::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.total();
}

FaultyTransportStats FaultyTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

TransportFault FaultyTransport::NextFaultLocked() {
  const size_t call = stats_.calls++;
  if (!options_.schedule.empty()) {
    if (call < options_.schedule.size()) return options_.schedule[call];
    if (options_.cycle) {
      return options_.schedule[call % options_.schedule.size()];
    }
    return TransportFault::kNone;
  }
  if (options_.fault_rate > 0 && rng_.Bernoulli(options_.fault_rate)) {
    // kNone excluded: a drawn fault is a fault.
    return static_cast<TransportFault>(
        1 + rng_.Uniform(static_cast<uint64_t>(TransportFault::kDelay)));
  }
  return TransportFault::kNone;
}

Result<std::vector<uint8_t>> FaultyTransport::RoundTrip(
    const std::vector<uint8_t>& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const TransportFault fault = NextFaultLocked();
  switch (fault) {
    case TransportFault::kNone: break;
    case TransportFault::kDrop: ++stats_.drops; break;
    case TransportFault::kTruncate: ++stats_.truncations; break;
    case TransportFault::kBitFlip: ++stats_.bit_flips; break;
    case TransportFault::kReorder: ++stats_.reorders; break;
    case TransportFault::kDelay: ++stats_.delays; break;
  }

  switch (fault) {
    case TransportFault::kNone:
      return inner_->RoundTrip(request);
    case TransportFault::kDrop: {
      // The shard processes the request; its response never arrives. This
      // is what a timeout on a live-but-unreachable shard looks like.
      (void)inner_->RoundTrip(request);
      return Status::Unavailable("injected fault: response frame dropped");
    }
    case TransportFault::kTruncate: {
      EMB_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                           inner_->RoundTrip(request));
      // Chop strictly short of the full length so a scheduled truncation
      // always damages the frame (an intact delivery would make
      // "fault => typed error" assertions seed-dependent).
      if (!response.empty()) {
        response.resize(rng_.Uniform(response.size()));
      }
      return response;
    }
    case TransportFault::kBitFlip: {
      EMB_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                           inner_->RoundTrip(request));
      if (!response.empty()) {
        const size_t bit = rng_.Uniform(response.size() * 8);
        response[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      return response;
    }
    case TransportFault::kReorder: {
      // Swap this response with the previously held one; the first reorder
      // (nothing held yet) degrades to a drop. The stale response carries a
      // stale envelope seq, which the coordinator must reject.
      EMB_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                           inner_->RoundTrip(request));
      std::vector<uint8_t> out;
      const bool had_held = has_held_;
      if (had_held) out = std::move(held_);
      held_ = std::move(response);
      has_held_ = true;
      if (!had_held) {
        return Status::Unavailable(
            "injected fault: response reordered past its request");
      }
      return out;
    }
    case TransportFault::kDelay: {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.delay_ms));
      return inner_->RoundTrip(request);
    }
  }
  return Status::Internal("unreachable fault kind");
}

}  // namespace embellish::server
