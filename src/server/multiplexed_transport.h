// One non-blocking connection per replica, N round trips in flight on it.
//
// The blocking TcpTransport pins one executor worker per in-flight round
// trip: the worker writes the request and then parks in recv until the
// response arrives. MultiplexedTransport removes that coupling. It owns a
// single non-blocking socket registered on an EventLoop; SubmitRoundTrip
// enqueues the request frame from any thread and returns immediately, and
// the loop thread correlates response frames back to their submitters by
// the (epoch, seq) pair every kShardRequest envelope already carries — the
// same echo the coordinator validates end-to-end. Overlapped coordinator
// fan-out therefore pins zero workers on transport I/O; they submit, then
// one of them awaits all completions.
//
// Correlation is strict: a response whose (epoch, seq) matches no in-flight
// request — a duplicate, a stale replay from before a reconnect, or a
// hostile fabrication — is counted and dropped, never delivered to the
// wrong submitter. A response stream that stops making sense as frames
// (corrupt header, outer kError that cannot name a request) poisons the
// connection: every in-flight trip fails with a typed status and the next
// submit reconnects. The coordinator's hedging, failover, breakers and
// kBusy shedding sit unchanged on top — they only ever see per-trip typed
// outcomes, exactly as with the blocking transport.
//
// Threading: SubmitRoundTrip and RoundTrip are thread-safe. All connection
// and correlation state is confined to the loop thread (submissions hop
// there via RunInLoop), so none of it is locked. Completions run on the
// loop thread and must not block — the coordinator's awaiting side only
// takes a mutex + condition variable signal.

#ifndef EMBELLISH_SERVER_MULTIPLEXED_TRANSPORT_H_
#define EMBELLISH_SERVER_MULTIPLEXED_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/event_loop.h"
#include "server/io_util.h"
#include "server/shard_transport.h"

namespace embellish::server {

struct MultiplexedTransportOptions {
  int connect_timeout_ms = 5000;
  /// Per-round-trip deadline, submit to completion, on CLOCK_MONOTONIC.
  int io_timeout_ms = 5000;
};

/// \brief Counters for the correlation machinery (all cumulative).
struct MultiplexedTransportStats {
  size_t requests = 0;          ///< round trips submitted
  size_t responses = 0;         ///< responses correlated and delivered
  size_t orphan_responses = 0;  ///< responses matching no in-flight seq
  size_t timeouts = 0;          ///< trips that expired before a response
  size_t resets = 0;            ///< connection teardowns (error / poison)
};

/// \brief ShardTransport over one multiplexed non-blocking connection.
class MultiplexedTransport : public ShardTransport {
 public:
  /// \brief Connects eagerly (blocking, with deadline — call from setup, not
  ///        the loop thread) and registers the socket on `loop`, which must
  ///        be started and must outlive the transport. Destroy the transport
  ///        before stopping the loop.
  static Result<std::unique_ptr<MultiplexedTransport>> Connect(
      const std::string& host, uint16_t port, EventLoop* loop,
      const MultiplexedTransportOptions& options = {});

  /// \brief Adopts an already-connected socket (e.g. one end of a
  ///        socketpair) — the correlation-test hook where the test plays the
  ///        byzantine peer. The transport owns `fd`. No reconnect endpoint:
  ///        after a reset, submits fail until the transport is replaced.
  static Result<std::unique_ptr<MultiplexedTransport>> Adopt(
      int fd, EventLoop* loop, const MultiplexedTransportOptions& options = {});

  ~MultiplexedTransport() override;
  MultiplexedTransport(const MultiplexedTransport&) = delete;
  MultiplexedTransport& operator=(const MultiplexedTransport&) = delete;

  /// \brief Blocking convenience over SubmitRoundTrip (handshakes, tests).
  ///        FailedPrecondition when called on the loop thread — that would
  ///        deadlock the completion it is waiting for.
  Result<std::vector<uint8_t>> RoundTrip(
      const std::vector<uint8_t>& request) override;

  bool SupportsAsyncSubmit() const override { return true; }

  /// \brief Submits one round trip; `done` runs exactly once, on the loop
  ///        thread (or inline on parse failure). The request must be a
  ///        kShardRequest frame — its envelope (epoch, seq) is the
  ///        correlation key, so a duplicate in-flight key is rejected.
  void SubmitRoundTrip(const std::vector<uint8_t>& request,
                       RoundTripCompletion done) override;

  MultiplexedTransportStats stats() const;

 private:
  enum class ConnState { kDisconnected, kConnecting, kConnected };

  using Key = std::pair<uint64_t, uint64_t>;  // (epoch, seq)

  struct Pending {
    RoundTripCompletion done;
    uint64_t timer_id = 0;
  };

  MultiplexedTransport(EventLoop* loop, std::string host, uint16_t port,
                       bool can_reconnect,
                       const MultiplexedTransportOptions& options);

  Status Register(int fd, ConnState state);

  // All of the below run on the loop thread only.
  void SubmitInLoop(Key key, std::vector<uint8_t> request,
                    RoundTripCompletion done);
  Status StartConnectInLoop();
  void FinishConnect();
  void OnIoEvent(uint32_t events);
  void OnReadable();
  void OnWritable();
  void HandleResponseFrame(std::vector<uint8_t> frame);
  void OnTimeout(Key key);
  void UpdateInterest();
  // Fails every in-flight trip with `cause`, closes the socket, and leaves
  // the transport kDisconnected (the next submit reconnects when possible).
  void ResetConnection(const Status& cause);
  void TeardownInLoop();

  EventLoop* const loop_;  // not owned
  const std::string host_;
  const uint16_t port_;
  const bool can_reconnect_;
  const MultiplexedTransportOptions options_;

  // Loop-confined connection + correlation state (no locks by design).
  int fd_ = -1;
  ConnState state_ = ConnState::kDisconnected;
  uint32_t interest_ = 0;  // current epoll interest mask for fd_
  uint64_t connect_timer_id_ = 0;
  FrameReader reader_{kMaxTransportFrameBytes};
  FrameWriter writer_;
  std::map<Key, Pending> pending_;

  std::atomic<size_t> requests_{0};
  std::atomic<size_t> responses_{0};
  std::atomic<size_t> orphan_responses_{0};
  std::atomic<size_t> timeouts_{0};
  std::atomic<size_t> resets_{0};
};

}  // namespace embellish::server

#endif  // EMBELLISH_SERVER_MULTIPLEXED_TRANSPORT_H_
