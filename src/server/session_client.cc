#include "server/session_client.h"

#include <algorithm>

#include "core/wire_format.h"

namespace embellish::server {

SessionClient::SessionClient(uint64_t session_id,
                             const core::BucketOrganization* buckets,
                             std::unique_ptr<crypto::BenalohKeyPair> keys,
                             uint64_t seed)
    : session_id_(session_id),
      keys_(std::move(keys)),
      client_(buckets, &keys_->public_key(), &keys_->private_key(),
              /*pool=*/nullptr),
      rng_(seed) {}

Result<SessionClient> SessionClient::Create(
    uint64_t session_id, const core::BucketOrganization* buckets,
    const crypto::BenalohKeyOptions& key_options, uint64_t seed) {
  Rng keygen_rng(seed);
  EMB_ASSIGN_OR_RETURN(crypto::BenalohKeyPair keys,
                       crypto::BenalohKeyPair::Generate(key_options,
                                                        &keygen_rng));
  return SessionClient(
      session_id, buckets,
      std::make_unique<crypto::BenalohKeyPair>(std::move(keys)), seed ^ 1);
}

std::vector<uint8_t> SessionClient::HelloFrame() const {
  return EncodeFrame(FrameKind::kHello, session_id_,
                     EncodeHello(keys_->public_key()));
}

Result<std::vector<uint8_t>> SessionClient::QueryFrame(
    const std::vector<wordnet::TermId>& genuine_terms) {
  // Canonicalize: the embellisher collapses duplicates and the decoy set
  // depends only on which terms appear, so the sorted deduplicated set is
  // the right cache key.
  std::vector<wordnet::TermId> sorted = genuine_terms;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  auto it = uplink_cache_.find(sorted);
  if (it == uplink_cache_.end()) {
    if (uplink_cache_.size() >= kMaxCachedEncodings) uplink_cache_.clear();
    EMB_ASSIGN_OR_RETURN(core::EmbellishedQuery query,
                         client_.FormulateQuery(sorted, &rng_, &costs_));
    // FormulateQuery charged the payload's wire bytes; the frame header is
    // added below from the framed size instead.
    costs_.uplink_bytes -= query.WireBytes(keys_->public_key());
    it = uplink_cache_
             .emplace(std::move(sorted),
                      core::EncodeQuery(query, keys_->public_key()))
             .first;
  }
  std::vector<uint8_t> frame =
      EncodeFrame(FrameKind::kQuery, session_id_, it->second);
  costs_.uplink_bytes += frame.size();
  return frame;
}

Result<std::vector<index::ScoredDoc>> SessionClient::DecodeResultFrame(
    const std::vector<uint8_t>& response, size_t k) {
  EMB_ASSIGN_OR_RETURN(Frame frame, DecodeFrame(response));
  costs_.downlink_bytes += response.size();
  // Error frames are surfaced before the session check: the server answers
  // an undecodable request with session id 0, and the transported status is
  // the information the caller needs.
  if (frame.kind == FrameKind::kError) {
    Status transported;
    EMB_RETURN_NOT_OK(DecodeError(frame.payload, &transported));
    return transported;
  }
  if (frame.session_id != session_id_) {
    return Status::Corruption("response frame for a different session");
  }
  if (frame.kind != FrameKind::kResult) {
    return Status::Corruption("expected a result frame");
  }
  EMB_ASSIGN_OR_RETURN(
      core::EncryptedResult result,
      core::DecodeResult(frame.payload, keys_->public_key()));
  return client_.PostFilter(result, k, &costs_);
}

}  // namespace embellish::server
