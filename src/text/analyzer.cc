#include "text/analyzer.h"

#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace embellish::text {

std::vector<std::string> Analyze(std::string_view input,
                                 const AnalyzerOptions& options) {
  std::vector<std::string> tokens = Tokenize(input);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& tok : tokens) {
    if (tok.size() < options.min_token_length) continue;
    if (options.remove_stopwords && IsStopword(tok)) continue;
    out.push_back(std::move(tok));
  }
  return out;
}

}  // namespace embellish::text
