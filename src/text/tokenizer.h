// Word tokenizer for document text (the Lucene analyzer's role in §5.2).

#ifndef EMBELLISH_TEXT_TOKENIZER_H_
#define EMBELLISH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace embellish::text {

/// \brief Splits text into lower-cased word tokens.
///
/// A token is a maximal run of ASCII letters/digits, with internal
/// apostrophes and hyphens preserved ("fool's", "yellow-breasted") so that
/// dictionary entries like "fool's gold" tokenize consistently.
std::vector<std::string> Tokenize(std::string_view text);

}  // namespace embellish::text

#endif  // EMBELLISH_TEXT_TOKENIZER_H_
