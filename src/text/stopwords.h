// English stopword list. The paper's indexing pipeline (§5.2) removes
// stopwords ("common words like 'the' and 'a' that are not useful for
// differentiating between documents") and performs no stemming.

#ifndef EMBELLISH_TEXT_STOPWORDS_H_
#define EMBELLISH_TEXT_STOPWORDS_H_

#include <string_view>

namespace embellish::text {

/// \brief True if `word` (already lower-cased) is a stopword.
bool IsStopword(std::string_view word);

/// \brief Number of entries in the built-in stopword list.
size_t StopwordCount();

}  // namespace embellish::text

#endif  // EMBELLISH_TEXT_STOPWORDS_H_
