#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace embellish::text {

namespace {

// The classic English list used by early Lucene / SMART-derived systems.
const std::unordered_set<std::string>& StopwordSet() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "a",       "about",  "above",   "after",  "again",   "against",
          "all",     "am",     "an",      "and",    "any",     "are",
          "as",      "at",     "be",      "because","been",    "before",
          "being",   "below",  "between", "both",   "but",     "by",
          "can",     "could",  "did",     "do",     "does",    "doing",
          "down",    "during", "each",    "few",    "for",     "from",
          "further", "had",    "has",     "have",   "having",  "he",
          "her",     "here",   "hers",    "him",    "his",     "how",
          "i",       "if",     "in",      "into",   "is",      "it",
          "its",     "itself", "just",    "me",     "more",    "most",
          "my",      "myself", "no",      "nor",    "not",     "now",
          "of",      "off",    "on",      "once",   "only",    "or",
          "other",   "our",    "ours",    "out",    "over",    "own",
          "s",       "same",   "she",     "should", "so",      "some",
          "such",    "t",      "than",    "that",   "the",     "their",
          "theirs",  "them",   "then",    "there",  "these",   "they",
          "this",    "those",  "through", "to",     "too",     "under",
          "until",   "up",     "very",    "was",    "we",      "were",
          "what",    "when",   "where",   "which",  "while",   "who",
          "whom",    "why",    "will",    "with",   "you",     "your",
          "yours",   "yourself"};
  return *kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

size_t StopwordCount() { return StopwordSet().size(); }

}  // namespace embellish::text
