// Analysis pipeline: tokenize -> stopword removal (no stemming, per §5.2).

#ifndef EMBELLISH_TEXT_ANALYZER_H_
#define EMBELLISH_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace embellish::text {

/// \brief Analyzer options.
struct AnalyzerOptions {
  bool remove_stopwords = true;

  /// Tokens shorter than this are dropped (single letters are noise).
  size_t min_token_length = 2;
};

/// \brief Runs the analysis pipeline over raw text.
std::vector<std::string> Analyze(std::string_view input,
                                 const AnalyzerOptions& options = {});

}  // namespace embellish::text

#endif  // EMBELLISH_TEXT_ANALYZER_H_
