#include "text/tokenizer.h"

#include <cctype>

namespace embellish::text {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool IsJoiner(char c) { return c == '\'' || c == '-'; }

}  // namespace

std::vector<std::string> Tokenize(std::string_view input) {
  std::vector<std::string> tokens;
  std::string cur;
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsWordChar(c)) {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (IsJoiner(c) && !cur.empty() && i + 1 < input.size() &&
               IsWordChar(input[i + 1])) {
      cur.push_back(c);  // keep internal ' and - ("fool's", "mix-net")
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

}  // namespace embellish::text
