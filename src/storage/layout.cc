#include "storage/layout.h"

#include "common/answer_path.h"
#include "common/strings.h"

namespace embellish::storage {

StorageLayout StorageLayout::Build(
    const index::InvertedIndex& index,
    const std::vector<std::vector<wordnet::TermId>>& groups,
    LayoutPolicy policy, const DiskModelOptions& disk_options) {
  common::NoteHeavyBuild();
  StorageLayout layout;
  layout.policy_ = policy;
  layout.group_extents_.reserve(groups.size());
  const size_t block_bytes = disk_options.block_bytes;
  uint64_t next_block = 0;

  for (const std::vector<wordnet::TermId>& group : groups) {
    std::vector<Extent> extents;
    if (policy == LayoutPolicy::kBucketColocated) {
      uint64_t bytes = 0;
      for (wordnet::TermId term : group) bytes += index.ListBytes(term);
      uint64_t blocks = (bytes + block_bytes - 1) / block_bytes;
      if (blocks == 0) blocks = 1;  // a bucket always owns >= 1 block
      extents.push_back(Extent{next_block, blocks});
      next_block += blocks;
    } else {
      for (wordnet::TermId term : group) {
        uint64_t bytes = index.ListBytes(term);
        uint64_t blocks = (bytes + block_bytes - 1) / block_bytes;
        if (blocks == 0) blocks = 1;
        extents.push_back(Extent{next_block, blocks});
        next_block += blocks;
        // Scattered placement leaves a gap so consecutive lists are not
        // physically adjacent (each read pays its own positioning cost).
        next_block += 8;
      }
    }
    layout.group_extents_.push_back(std::move(extents));
  }
  layout.total_blocks_ = next_block;
  return layout;
}

Result<size_t> StorageLayout::GroupExtentCount(size_t group) const {
  if (group >= group_extents_.size()) {
    return Status::OutOfRange(
        StringPrintf("group %zu out of range (layout has %zu groups)", group,
                     group_extents_.size()));
  }
  return group_extents_[group].size();
}

Status StorageLayout::ChargeGroupRead(size_t group,
                                      SimulatedDisk* disk) const {
  if (group >= group_extents_.size()) {
    return Status::OutOfRange(
        StringPrintf("group %zu out of range (layout has %zu groups)", group,
                     group_extents_.size()));
  }
  for (const Extent& e : group_extents_[group]) {
    disk->ChargeExtent(e.block_count);
  }
  return Status::OK();
}

}  // namespace embellish::storage
