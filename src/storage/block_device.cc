#include "storage/block_device.h"

namespace embellish::storage {

Status DiskModelOptions::Validate() const {
  if (block_bytes == 0 || (block_bytes & (block_bytes - 1)) != 0) {
    return Status::InvalidArgument("block_bytes must be a power of two");
  }
  if (avg_seek_ms < 0 || avg_rotational_ms < 0) {
    return Status::InvalidArgument("latencies must be non-negative");
  }
  if (transfer_mb_per_s <= 0) {
    return Status::InvalidArgument("transfer rate must be positive");
  }
  return Status::OK();
}

Result<SimulatedDisk> SimulatedDisk::Create(const DiskModelOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  return SimulatedDisk(options);
}

SimulatedDisk::SimulatedDisk(const DiskModelOptions& options)
    : options_(options) {
  // Release-safe clamp: the old assert() vanished under NDEBUG and let a
  // zero block size reach the BlocksForBytes division.
  if (!options_.Validate().ok()) options_ = DiskModelOptions{};
}

uint64_t SimulatedDisk::BlocksForBytes(uint64_t bytes) const {
  return (bytes + options_.block_bytes - 1) / options_.block_bytes;
}

double SimulatedDisk::ExtentReadMs(uint64_t blocks) const {
  if (blocks == 0) return 0.0;
  const double bytes =
      static_cast<double>(blocks) * static_cast<double>(options_.block_bytes);
  const double transfer_ms =
      bytes / (options_.transfer_mb_per_s * 1e6) * 1e3;
  return options_.avg_seek_ms + options_.avg_rotational_ms + transfer_ms;
}

void SimulatedDisk::ChargeExtent(uint64_t blocks) {
  if (blocks == 0) return;
  accumulated_ms_ += ExtentReadMs(blocks);
  accumulated_blocks_ += blocks;
  accumulated_extents_ += 1;
}

void SimulatedDisk::ResetAccounting() {
  accumulated_ms_ = 0.0;
  accumulated_blocks_ = 0;
  accumulated_extents_ = 0;
}

}  // namespace embellish::storage
