// On-disk placement of inverted lists.
//
// Section 4: "the search engine should store the inverted lists for the
// terms of a bucket in common disk block(s). This allows Algorithm 4 to
// fetch the inverted lists of an entire bucket's worth of terms in one
// operation." The colocated layout implements that; the scattered layout
// (one extent per term) exists for the ablation bench quantifying the
// saving.

#ifndef EMBELLISH_STORAGE_LAYOUT_H_
#define EMBELLISH_STORAGE_LAYOUT_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/inverted_index.h"
#include "storage/block_device.h"
#include "wordnet/database.h"

namespace embellish::storage {

/// \brief A contiguous run of blocks.
struct Extent {
  uint64_t first_block = 0;
  uint64_t block_count = 0;
};

/// \brief Placement policy.
enum class LayoutPolicy {
  kBucketColocated,  ///< each term group shares one contiguous extent
  kScattered,        ///< every list in its own extent
};

/// \brief Immutable layout mapping term groups (buckets) to extents.
class StorageLayout {
 public:
  /// \brief Lays out `groups` of terms (each group = one bucket).
  ///        Terms missing from the index occupy zero bytes but remain
  ///        addressable.
  static StorageLayout Build(
      const index::InvertedIndex& index,
      const std::vector<std::vector<wordnet::TermId>>& groups,
      LayoutPolicy policy, const DiskModelOptions& disk_options);

  LayoutPolicy policy() const { return policy_; }

  /// \brief Number of extents a read of group `g` touches (1 if colocated);
  ///        OutOfRange when `group` does not exist in the layout.
  Result<size_t> GroupExtentCount(size_t group) const;

  /// \brief Charges the read of all of group `g`'s lists to `disk`;
  ///        OutOfRange when `group` does not exist (charges nothing).
  Status ChargeGroupRead(size_t group, SimulatedDisk* disk) const;

  /// \brief Total blocks occupied.
  uint64_t total_blocks() const { return total_blocks_; }

  size_t group_count() const { return group_extents_.size(); }

 private:
  LayoutPolicy policy_ = LayoutPolicy::kBucketColocated;
  // Per group: one extent (colocated) or one per member term (scattered).
  std::vector<std::vector<Extent>> group_extents_;
  uint64_t total_blocks_ = 0;
};

}  // namespace embellish::storage

#endif  // EMBELLISH_STORAGE_LAYOUT_H_
