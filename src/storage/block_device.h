// Simulated block storage cost model.
//
// The paper's server I/O metric (Figures 7a/8a) was measured on a Seagate
// ST973401KC (2.5" 10k-RPM SAS) with 1-KByte blocks. We model a read of one
// contiguous extent as positioning (seek + half-rotation) plus transfer at
// the sustained rate, and expose an accumulator the retrieval schemes charge
// their fetches to. Absolute milliseconds are a model, not a measurement —
// EXPERIMENTS.md compares shapes, not absolutes, against the paper.

#ifndef EMBELLISH_STORAGE_BLOCK_DEVICE_H_
#define EMBELLISH_STORAGE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace embellish::storage {

/// \brief Drive/geometry parameters (defaults: ST973401KC-era hardware).
struct DiskModelOptions {
  size_t block_bytes = 1024;        ///< the paper's 1-KByte blocks
  double avg_seek_ms = 4.7;         ///< 10k-RPM 2.5" SAS average read seek
  double avg_rotational_ms = 3.0;   ///< half a rotation at 10k RPM
  double transfer_mb_per_s = 62.0;  ///< sustained transfer

  Status Validate() const;
};

/// \brief Pure cost model plus a per-query accumulator.
class SimulatedDisk {
 public:
  /// \brief Validating factory: InvalidArgument when `options` fails
  ///        Validate(). Prefer this on untrusted/config-derived options.
  static Result<SimulatedDisk> Create(const DiskModelOptions& options);

  /// \brief Direct construction clamps invalid options to the defaults
  ///        (documented ST973401KC geometry) instead of relying on an
  ///        assert that compiles out under NDEBUG — an invalid
  ///        `block_bytes == 0` must never reach the BlocksForBytes
  ///        division in a Release build.
  explicit SimulatedDisk(const DiskModelOptions& options = {});

  const DiskModelOptions& options() const { return options_; }

  /// \brief Cost (ms) of reading one contiguous extent of `blocks` blocks.
  double ExtentReadMs(uint64_t blocks) const;

  /// \brief Blocks needed to hold `bytes`.
  uint64_t BlocksForBytes(uint64_t bytes) const;

  // -- Accounting --

  /// \brief Charges one extent read to the accumulator.
  void ChargeExtent(uint64_t blocks);

  void ResetAccounting();
  double accumulated_ms() const { return accumulated_ms_; }
  uint64_t accumulated_blocks() const { return accumulated_blocks_; }
  uint64_t accumulated_extents() const { return accumulated_extents_; }

 private:
  DiskModelOptions options_;
  double accumulated_ms_ = 0.0;
  uint64_t accumulated_blocks_ = 0;
  uint64_t accumulated_extents_ = 0;
};

}  // namespace embellish::storage

#endif  // EMBELLISH_STORAGE_BLOCK_DEVICE_H_
