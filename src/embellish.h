// Umbrella header for the embellish library.
//
// embellish is a from-scratch C++20 implementation of
//   Pang, Ding, Xiao: "Embellishing Text Search Queries To Protect User
//   Privacy", PVLDB 3(1), 2010,
// including every substrate the paper depends on: a lexical database with a
// synthetic WordNet generator, a text analysis pipeline, a synthetic corpus
// generator, an impact-ordered inverted index, Benaloh/Paillier homomorphic
// encryption and Kushilevitz-Ostrovsky PIR over arbitrary-precision
// arithmetic, plus the paper's bucket-organization, query-embellishment and
// private-retrieval algorithms with full cost accounting.
//
// Typical usage (see examples/quickstart.cc for the runnable version):
//
//   auto lexicon  = wordnet::GenerateSyntheticWordNet({});
//   auto spec     = core::SpecificityMap::FromHypernymDepth(*lexicon);
//   auto seq      = core::SequenceDictionary(*lexicon);
//   auto buckets  = core::FormBuckets(seq, spec, {.bucket_size = 4});
//   auto keys     = crypto::BenalohKeyPair::Generate({}, &rng);
//   core::PrivateRetrievalClient client(&*buckets, &keys->public_key(),
//                                       &keys->private_key());
//   core::PrivateRetrievalServer server(&index, &*buckets, &layout);
//   auto top = core::RunPrivateQuery(client, server, keys->public_key(),
//                                    {...term ids...}, 20, &rng, &costs);

#ifndef EMBELLISH_EMBELLISH_H_
#define EMBELLISH_EMBELLISH_H_

#include "common/answer_path.h"  // IWYU pragma: export
#include "common/log.h"          // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/stopwatch.h"    // IWYU pragma: export
#include "common/strings.h"      // IWYU pragma: export
#include "common/thread_pool.h"  // IWYU pragma: export

#include "bignum/bigint.h"       // IWYU pragma: export
#include "bignum/modmath.h"      // IWYU pragma: export
#include "bignum/montgomery.h"   // IWYU pragma: export
#include "bignum/prime.h"        // IWYU pragma: export

#include "crypto/benaloh.h"      // IWYU pragma: export
#include "crypto/paillier.h"     // IWYU pragma: export
#include "crypto/pir.h"          // IWYU pragma: export

#include "wordnet/builder.h"     // IWYU pragma: export
#include "wordnet/database.h"    // IWYU pragma: export
#include "wordnet/generator.h"   // IWYU pragma: export
#include "wordnet/mini_wordnet.h"// IWYU pragma: export
#include "wordnet/relation_extraction.h"  // IWYU pragma: export
#include "wordnet/text_format.h" // IWYU pragma: export

#include "text/analyzer.h"       // IWYU pragma: export
#include "text/stopwords.h"      // IWYU pragma: export
#include "text/tokenizer.h"      // IWYU pragma: export

#include "corpus/corpus.h"       // IWYU pragma: export
#include "corpus/generator.h"    // IWYU pragma: export
#include "corpus/zipf.h"         // IWYU pragma: export

#include "index/builder.h"       // IWYU pragma: export
#include "index/dictionary.h"    // IWYU pragma: export
#include "index/epoch.h"         // IWYU pragma: export
#include "index/impact.h"        // IWYU pragma: export
#include "index/inverted_index.h"// IWYU pragma: export
#include "index/sharding.h"      // IWYU pragma: export
#include "index/topk.h"          // IWYU pragma: export

#include "storage/block_device.h"// IWYU pragma: export
#include "storage/layout.h"      // IWYU pragma: export

#include "core/adversary.h"          // IWYU pragma: export
#include "core/bucket_io.h"          // IWYU pragma: export
#include "core/bucket_organization.h"// IWYU pragma: export
#include "core/bucketizer.h"         // IWYU pragma: export
#include "core/decoy_random.h"       // IWYU pragma: export
#include "core/embellisher.h"        // IWYU pragma: export
#include "core/grouping_adversary.h" // IWYU pragma: export
#include "core/pir_retrieval.h"      // IWYU pragma: export
#include "core/private_retrieval.h"  // IWYU pragma: export
#include "core/query_expansion.h"    // IWYU pragma: export
#include "core/risk.h"               // IWYU pragma: export
#include "core/semantic_distance.h"  // IWYU pragma: export
#include "core/sequencer.h"          // IWYU pragma: export
#include "core/sharded_retrieval.h"  // IWYU pragma: export
#include "core/session.h"            // IWYU pragma: export
#include "core/specificity.h"        // IWYU pragma: export
#include "core/wire_format.h"        // IWYU pragma: export

#include "server/async_frontend.h"   // IWYU pragma: export
#include "server/embellish_server.h" // IWYU pragma: export
#include "server/event_loop.h"       // IWYU pragma: export
#include "server/framing.h"          // IWYU pragma: export
#include "server/io_util.h"          // IWYU pragma: export
#include "server/multiplexed_transport.h"  // IWYU pragma: export
#include "server/response_cache.h"   // IWYU pragma: export
#include "server/session_client.h"   // IWYU pragma: export
#include "server/shard_coordinator.h"// IWYU pragma: export
#include "server/shard_transport.h"  // IWYU pragma: export

#endif  // EMBELLISH_EMBELLISH_H_
