// Shard-aware PR and PIR answer engines over a document-partitioned index.
//
// One query fans out across every shard — one thread-pool task per shard —
// and the per-shard partial results merge losslessly because documents are
// disjoint across shards:
//
//   PR (Algorithm 4): every posting of a document lives in exactly one
//   shard, so the shard computes the document's complete encrypted
//   accumulator. Modular multiplication is commutative, so the residues are
//   bit-identical to the monolithic evaluation; merging is concatenation
//   re-sorted into the canonical doc-id order.
//
//   PIR: all shards share the bucket organization, so one client query (one
//   residue per bucket column) is valid against every shard's (shorter)
//   bucket matrix. The server answers per shard and the client concatenates:
//   each per-shard gamma vector decodes to the shard's fragment of the
//   term's inverted list, and merging the fragments by (impact desc, doc
//   asc) reproduces the monolithic list exactly.
//
// I/O accounting charges each shard its own bucket extent reads — shards
// model independent spindles, which is what makes the fan-out a throughput
// win rather than a seek storm.

#ifndef EMBELLISH_CORE_SHARDED_RETRIEVAL_H_
#define EMBELLISH_CORE_SHARDED_RETRIEVAL_H_

#include <vector>

#include "core/pir_retrieval.h"
#include "core/private_retrieval.h"
#include "index/sharding.h"

namespace embellish::core {

/// \brief One StorageLayout per shard: the shard's sub-index laid out over
///        the same bucket groups (each shard owns its own disk).
std::vector<storage::StorageLayout> BuildShardLayouts(
    const index::ShardedIndex& sharded, const BucketOrganization& buckets,
    storage::LayoutPolicy policy,
    const storage::DiskModelOptions& disk_options = {});

/// \brief Merges per-shard Algorithm 4 partial results into the monolithic
///        encrypted result: concatenate and re-sort by doc id (documents are
///        shard-disjoint, so the canonical order is restored exactly and the
///        merged candidate set is bit-identical to the monolithic
///        evaluation). Shared by ShardedPrivateRetrievalServer and the
///        remote-shard coordinator. `per_shard` must be in shard order.
EncryptedResult MergeShardResults(std::vector<EncryptedResult> per_shard);

/// \brief Search-engine side of the PR scheme over shards.
class ShardedPrivateRetrievalServer {
 public:
  /// \brief `layouts`, when non-null, must hold one layout per shard (see
  ///        BuildShardLayouts) and outlive the server, as must `sharded` and
  ///        `buckets`. `pool` may be null (shards evaluated serially). The
  ///        pool is a multi-region executor, so it may be — and in the
  ///        batched server is — the same pool the caller is currently
  ///        running a ParallelFor region on: the per-query shard region
  ///        nests and composes. `max_parallel` caps the shards evaluated
  ///        concurrently per query (0 = one task per shard), bounding one
  ///        query's draw on a shared pool.
  ShardedPrivateRetrievalServer(
      const index::ShardedIndex* sharded, const BucketOrganization* buckets,
      const std::vector<storage::StorageLayout>* layouts,
      const storage::DiskModelOptions& disk_options = {},
      const PrivateRetrievalServerOptions& options = {},
      ThreadPool* pool = nullptr, size_t max_parallel = 0);

  size_t shard_count() const { return servers_.size(); }

  /// \brief Algorithm 4 fanned out across shards; the merged candidate set
  ///        is bit-identical to the monolithic PrivateRetrievalServer's.
  ///        Costs sum over shards.
  Result<EncryptedResult> Process(const EmbellishedQuery& query,
                                  const crypto::BenalohPublicKey& pk,
                                  RetrievalCosts* costs) const;

 private:
  std::vector<PrivateRetrievalServer> servers_;  // one per shard, null pool
  ThreadPool* pool_;  // not owned; null => serial shard loop
  size_t max_parallel_;  // cap on concurrent shards per query; 0 = all
};

/// \brief Search-engine side of the KO-PIR scheme over shards.
class ShardedPirRetrievalServer {
 public:
  /// \brief Same lifetime, pool-sharing and cap rules as
  ///        ShardedPrivateRetrievalServer.
  ShardedPirRetrievalServer(
      const index::ShardedIndex* sharded, const BucketOrganization* buckets,
      const std::vector<storage::StorageLayout>* layouts,
      const storage::DiskModelOptions& disk_options = {},
      ThreadPool* pool = nullptr, size_t max_parallel = 0);

  size_t shard_count() const { return servers_.size(); }

  /// \brief One PIR execution against one shard's bucket matrix.
  ///        Thread-safe: the per-shard matrix cache serializes only its lazy
  ///        builds, so concurrent queries to one shard run in parallel.
  Result<crypto::PirResponse> Answer(size_t shard, size_t bucket,
                                     const crypto::PirQuery& query,
                                     RetrievalCosts* costs) const;

  /// \brief Batched executions against one shard: items grouped by bucket,
  ///        each bucket matrix swept once for all of its queries. Response i
  ///        is bit-identical to Answer(shard, items[i]).
  Result<std::vector<crypto::PirResponse>> AnswerBatch(
      size_t shard, const std::vector<PirBatchItem>& items,
      RetrievalCosts* costs, crypto::PirBatchStats* stats = nullptr) const;

  /// \brief Answers `query` against `bucket` on every shard (fanned out
  ///        over the pool), in shard order — the per-shard answer
  ///        concatenation the client decodes shard by shard.
  Result<std::vector<crypto::PirResponse>> AnswerAll(
      size_t bucket, const crypto::PirQuery& query,
      RetrievalCosts* costs) const;

  /// \brief The per-shard monolithic server (tests compare matrices).
  const PirRetrievalServer& shard_server(size_t shard) const {
    return servers_[shard];
  }

 private:
  std::vector<PirRetrievalServer> servers_;  // one per shard, null pool
  ThreadPool* pool_;  // not owned; null => serial shard loop
  size_t max_parallel_;  // cap on concurrent shards per query; 0 = all
};

/// \brief Retrieves one term's inverted list from a sharded PIR server: one
///        query built once, answered per shard, fragments merged. The
///        merged list is bit-identical to the monolithic retrieval.
Result<std::vector<index::Posting>> RetrieveListSharded(
    const PirRetrievalClient& client, const ShardedPirRetrievalServer& server,
    wordnet::TermId term, Rng* rng, RetrievalCosts* costs);

/// \brief End-to-end sharded PIR query: one execution per distinct genuine
///        term, local scoring, top-k ranking — the sharded counterpart of
///        PirRetrievalClient::RunQuery.
Result<std::vector<index::ScoredDoc>> RunQuerySharded(
    const PirRetrievalClient& client, const ShardedPirRetrievalServer& server,
    const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
    RetrievalCosts* costs);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_SHARDED_RETRIEVAL_H_
