// The grouping adversary of Section 3.4.
//
// "Even if the adversary manages to group the terms in the embellished
// query correctly — a nontrivial task in general — he is still faced with
// the combinations of {'smyrna', 'huntsville'}, {'lut desert', 'pigeon
// loft'}, and {'acipenser', 'brama'}, all of which are also plausible
// topics that explain the user's interest."
//
// This module makes that argument quantitative. We grant the adversary the
// strongest position the paper concedes: the logical grouping (host
// buckets) is fully recovered. The adversary then runs a MAP attack — pick
// one member per bucket so that the chosen combination is maximally
// semantically coherent (genuine terms of one query relate to a common
// topic, so coherence is the right discriminator). The defense succeeds
// when the bucket organization's aligned decoys present equally coherent
// alternative combinations, driving the adversary's hit rate toward the
// 1/BktSz^m guessing floor; with random decoys the genuine combination is
// uniquely coherent and the attack succeeds.

#ifndef EMBELLISH_CORE_GROUPING_ADVERSARY_H_
#define EMBELLISH_CORE_GROUPING_ADVERSARY_H_

#include <vector>

#include "common/status.h"
#include "core/bucket_organization.h"
#include "core/semantic_distance.h"

namespace embellish::core {

/// \brief MAP attack parameters.
struct MapAttackOptions {
  /// Member combinations per query are capped; queries whose candidate
  /// space exceeds the cap fail with InvalidArgument.
  uint64_t max_combinations = 250000;

  /// Semantic distance cutoff (distances beyond it are clamped).
  double distance_cutoff = 32.0;
};

/// \brief Aggregate outcome of the attack over a query workload.
struct MapAttackResult {
  size_t queries = 0;

  /// Expected number of queries the MAP rule recovers exactly (ties are
  /// credited fractionally: a genuine combination tied with k others
  /// counts 1/(k+1)).
  double expected_hits = 0.0;

  /// expected_hits / queries.
  double hit_rate = 0.0;

  /// The guessing floor: mean over queries of 1 / |candidate space|.
  double chance_rate = 0.0;
};

/// \brief Runs the MAP coherence attack against `org` for each genuine
///        query in `queries` (each term must be bucketed).
Result<MapAttackResult> RunMapCoherenceAttack(
    const BucketOrganization& org, const SemanticDistanceCalculator& distance,
    const std::vector<std::vector<wordnet::TermId>>& queries,
    const MapAttackOptions& options = {});

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_GROUPING_ADVERSARY_H_
