// Algorithm 1 (Section 3.3): sequence the dictionary so that semantically
// related terms end up adjacent.
//
// Synsets are processed in decreasing connectivity (relation count); each
// seed synset pulls its related synsets' terms into the same sequence, in
// the paper's closeness order: derivational relations, antonyms, hyponyms,
// hypernyms, meronyms, then holonyms. (Topic/usage domain memberships are
// skipped, as in the paper.) Synsets whose terms span multiple existing
// sequences cause those sequences to be concatenated.

#ifndef EMBELLISH_CORE_SEQUENCER_H_
#define EMBELLISH_CORE_SEQUENCER_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "wordnet/database.h"
#include "wordnet/relation_extraction.h"

namespace embellish::core {

/// \brief Options for Algorithm 1.
struct SequencerOptions {
  /// Optional restriction to a searchable dictionary (Section 5.2 intersects
  /// the corpus dictionary with WordNet). Terms outside the predicate are
  /// never emitted. Null means "all lexicon terms".
  std::function<bool(wordnet::TermId)> term_filter;
};

/// \brief Output of Algorithm 1: the term sequences (SeqSet), in a
///        deterministic order.
struct SequencerResult {
  std::vector<std::vector<wordnet::TermId>> sequences;

  /// Total number of terms across all sequences.
  size_t TotalTerms() const;
};

/// \brief Runs Algorithm 1 over the lexicon.
SequencerResult SequenceDictionary(const wordnet::WordNetDatabase& db,
                                   const SequencerOptions& options = {});

// --- Appendix C: merging multiple sources of term relations ---------------

/// \brief Numeric strengths for the WordNet relation types, on the same
///        (0, 1] scale as extracted-relation NPMI. Defaults order the types
///        by the closeness ranking Algorithm 1 uses; domain memberships get
///        strength 0 (skipped), as in the paper.
struct RelationStrengths {
  double derivation = 1.00;
  double antonym = 0.90;
  double hyponym = 0.80;
  double hypernym = 0.70;
  double meronym = 0.50;
  double holonym = 0.45;

  /// \brief Strength of a relation type; 0 for domain memberships.
  double OfType(wordnet::RelationType type) const;
};

/// \brief Options for the merged-source sequencer.
struct MergedSequencerOptions {
  RelationStrengths wordnet_strengths;

  /// Appendix C's minimum strength threshold: weaker associations are not
  /// followed during the traversal.
  double min_strength = 0.20;

  /// Optional searchable-dictionary restriction (as in SequencerOptions).
  std::function<bool(wordnet::TermId)> term_filter;
};

/// \brief Appendix C variant of Algorithm 1: the traversal at line 18
///        iterates over the union of WordNet relations and corpus-extracted
///        relations, from the strongest down to `min_strength`.
SequencerResult SequenceDictionaryMerged(
    const wordnet::WordNetDatabase& db,
    const std::vector<wordnet::ExtractedRelation>& extracted,
    const MergedSequencerOptions& options = {});

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_SEQUENCER_H_
