#include "core/wire_format.h"

#include <cassert>

#include "common/endian.h"
#include "common/strings.h"

namespace embellish::core {

namespace {

// Shared frame: [u32 count] + count x ([u32 id][key_bytes ciphertext]).
template <typename Entry, typename GetId, typename GetCipher>
std::vector<uint8_t> EncodeFrame(const std::vector<Entry>& entries,
                                 const crypto::BenalohPublicKey& pk,
                                 GetId get_id, GetCipher get_cipher) {
  const size_t key_bytes = pk.CiphertextBytes();
  std::vector<uint8_t> out;
  out.reserve(4 + entries.size() * (4 + key_bytes));
  PutU32(&out, static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    PutU32(&out, get_id(e));
    std::vector<uint8_t> c = pk.Serialize(get_cipher(e));
    // Every entry must occupy exactly key_bytes on the wire — a short
    // serialization would silently shift every later entry, so pad with
    // leading zeros (big-endian). Oversize cannot occur: Serialize's
    // ToBigEndianBytesPadded clamps to the requested width.
    assert(c.size() == key_bytes && "Serialize must emit CiphertextBytes()");
    if (c.size() < key_bytes) {
      out.insert(out.end(), key_bytes - c.size(), 0);
    }
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

struct FrameEntry {
  uint32_t id;
  crypto::BenalohCiphertext ciphertext;
};

Result<std::vector<FrameEntry>> DecodeFrame(
    const std::vector<uint8_t>& bytes, const crypto::BenalohPublicKey& pk) {
  const size_t key_bytes = pk.CiphertextBytes();
  if (bytes.size() < 4) {
    return Status::Corruption("frame shorter than its header");
  }
  const uint32_t count = GetU32(bytes.data());
  const size_t entry_size = 4 + key_bytes;
  // Bound the attacker-controlled count by the bytes actually present before
  // any multiplication: on a 32-bit size_t, 4 + count * entry_size can wrap
  // and a hostile header would otherwise slip past the size check and force
  // a huge reserve below.
  if (count > (bytes.size() - 4) / entry_size) {
    return Status::Corruption(
        StringPrintf("frame declares %u entries but holds %zu payload bytes",
                     count, bytes.size() - 4));
  }
  const size_t expected = 4 + static_cast<size_t>(count) * entry_size;
  if (bytes.size() != expected) {
    return Status::Corruption(
        StringPrintf("frame size %zu != expected %zu for %u entries",
                     bytes.size(), expected, count));
  }
  std::vector<FrameEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* p = bytes.data() + 4 + i * entry_size;
    FrameEntry entry;
    entry.id = GetU32(p);
    std::vector<uint8_t> cipher_bytes(p + 4, p + 4 + key_bytes);
    EMB_ASSIGN_OR_RETURN(entry.ciphertext, pk.Deserialize(cipher_bytes));
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

std::vector<uint8_t> EncodeQuery(const EmbellishedQuery& query,
                                 const crypto::BenalohPublicKey& pk) {
  return EncodeFrame(
      query.entries, pk,
      [](const EmbellishedTerm& e) { return static_cast<uint32_t>(e.term); },
      [](const EmbellishedTerm& e) { return e.indicator; });
}

Result<EmbellishedQuery> DecodeQuery(const std::vector<uint8_t>& bytes,
                                     const crypto::BenalohPublicKey& pk) {
  EMB_ASSIGN_OR_RETURN(std::vector<FrameEntry> entries,
                       DecodeFrame(bytes, pk));
  EmbellishedQuery query;
  query.entries.reserve(entries.size());
  for (FrameEntry& e : entries) {
    query.entries.push_back(
        EmbellishedTerm{static_cast<wordnet::TermId>(e.id),
                        std::move(e.ciphertext)});
  }
  return query;
}

std::vector<uint8_t> EncodeResult(const EncryptedResult& result,
                                  const crypto::BenalohPublicKey& pk) {
  return EncodeFrame(
      result.candidates, pk,
      [](const EncryptedCandidate& c) { return static_cast<uint32_t>(c.doc); },
      [](const EncryptedCandidate& c) { return c.score; });
}

Result<EncryptedResult> DecodeResult(const std::vector<uint8_t>& bytes,
                                     const crypto::BenalohPublicKey& pk) {
  EMB_ASSIGN_OR_RETURN(std::vector<FrameEntry> entries,
                       DecodeFrame(bytes, pk));
  EncryptedResult result;
  result.candidates.reserve(entries.size());
  for (FrameEntry& e : entries) {
    result.candidates.push_back(
        EncryptedCandidate{static_cast<corpus::DocId>(e.id),
                           std::move(e.ciphertext)});
  }
  return result;
}

}  // namespace embellish::core
