#include "core/specificity.h"

#include <algorithm>
#include <queue>

namespace embellish::core {

SpecificityMap SpecificityMap::FromHypernymDepth(
    const wordnet::WordNetDatabase& db) {
  SpecificityMap map;
  const size_t n = db.synset_count();
  map.synset_specificity_.assign(n, -1);

  // Multi-source BFS from every hypernym root, descending hyponym edges;
  // the BFS level is exactly the shortest hypernym path back up.
  std::queue<wordnet::SynsetId> frontier;
  for (wordnet::SynsetId s = 0; s < n; ++s) {
    if (db.IsHypernymRoot(s)) {
      map.synset_specificity_[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    wordnet::SynsetId s = frontier.front();
    frontier.pop();
    const int next_depth = map.synset_specificity_[s] + 1;
    for (const wordnet::Relation& rel : db.synset(s).relations) {
      if (rel.type != wordnet::RelationType::kHyponym) continue;
      if (map.synset_specificity_[rel.target] < 0) {
        map.synset_specificity_[rel.target] = next_depth;
        frontier.push(rel.target);
      }
    }
  }

  map.term_specificity_.assign(db.term_count(), 0);
  for (wordnet::TermId t = 0; t < db.term_count(); ++t) {
    int best = -1;
    for (wordnet::SynsetId s : db.term(t).synsets) {
      int d = map.synset_specificity_[s];
      if (d >= 0 && (best < 0 || d < best)) best = d;
    }
    map.term_specificity_[t] = best < 0 ? 0 : best;
    map.max_specificity_ = std::max(map.max_specificity_,
                                    map.term_specificity_[t]);
  }
  return map;
}

SpecificityMap SpecificityMap::FromDocumentFrequency(
    const wordnet::WordNetDatabase& db, const corpus::Corpus& corpus,
    int max_level) {
  SpecificityMap map;
  map.term_specificity_.assign(db.term_count(), max_level);

  // Rank indexed terms by decreasing document frequency; percentile rank
  // maps onto the 0..max_level scale so the two methods are comparable.
  std::vector<std::pair<uint32_t, wordnet::TermId>> by_df;
  for (wordnet::TermId t = 0; t < db.term_count(); ++t) {
    uint32_t df = corpus.DocumentFrequency(t);
    if (df > 0) by_df.emplace_back(df, t);
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const size_t n = by_df.size();
  for (size_t rank = 0; rank < n; ++rank) {
    int level = static_cast<int>(static_cast<double>(rank) * (max_level + 1) /
                                 static_cast<double>(n));
    map.term_specificity_[by_df[rank].second] =
        std::min(level, max_level);
  }
  map.max_specificity_ = max_level;
  return map;
}

std::vector<size_t> SpecificityMap::TermHistogram() const {
  std::vector<size_t> hist(static_cast<size_t>(max_specificity_) + 1, 0);
  for (int s : term_specificity_) {
    hist[static_cast<size_t>(s)] += 1;
  }
  return hist;
}

}  // namespace embellish::core
