#include "core/semantic_distance.h"

#include <queue>

namespace embellish::core {

double SemanticDistanceWeights::WeightOf(wordnet::RelationType type) const {
  switch (type) {
    case wordnet::RelationType::kHypernym:
      return hypernym;
    case wordnet::RelationType::kHyponym:
      return hyponym;
    case wordnet::RelationType::kAntonym:
      return antonym;
    case wordnet::RelationType::kHolonym:
      return holonym;
    case wordnet::RelationType::kMeronym:
      return meronym;
    case wordnet::RelationType::kDomain:
      return domain;
    case wordnet::RelationType::kDomainMember:
      return domain_member;
    case wordnet::RelationType::kDerivation:
      return derivation;
  }
  return 1.0;
}

SemanticDistanceCalculator::SemanticDistanceCalculator(
    const wordnet::WordNetDatabase* db, SemanticDistanceWeights weights)
    : db_(db),
      weights_(weights),
      dist_(db->synset_count(), 0.0),
      stamp_(db->synset_count(), 0),
      target_stamp_(db->synset_count(), 0) {}

double SemanticDistanceCalculator::SynsetDistance(wordnet::SynsetId a,
                                                  wordnet::SynsetId b,
                                                  double cutoff) const {
  return MultiSourceDistance({a}, {b}, cutoff);
}

double SemanticDistanceCalculator::TermDistance(wordnet::TermId a,
                                                wordnet::TermId b,
                                                double cutoff) const {
  return MultiSourceDistance(db_->term(a).synsets, db_->term(b).synsets,
                             cutoff);
}

double SemanticDistanceCalculator::MultiSourceDistance(
    const std::vector<wordnet::SynsetId>& sources,
    const std::vector<wordnet::SynsetId>& targets, double cutoff) const {
  ++epoch_;
  for (wordnet::SynsetId t : targets) {
    target_stamp_[t] = epoch_;
  }
  for (wordnet::SynsetId s : sources) {
    if (target_stamp_[s] == epoch_) return 0.0;
  }

  using Entry = std::pair<double, wordnet::SynsetId>;  // (dist, synset)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (wordnet::SynsetId s : sources) {
    dist_[s] = 0.0;
    stamp_[s] = epoch_;
    heap.emplace(0.0, s);
  }

  while (!heap.empty()) {
    auto [d, s] = heap.top();
    heap.pop();
    if (stamp_[s] == epoch_ && d > dist_[s]) continue;  // stale entry
    if (d > cutoff) return kUnreachable;
    if (target_stamp_[s] == epoch_) return d;
    for (const wordnet::Relation& rel : db_->synset(s).relations) {
      double nd = d + weights_.WeightOf(rel.type);
      if (nd > cutoff) continue;
      if (stamp_[rel.target] == epoch_ && nd >= dist_[rel.target]) continue;
      dist_[rel.target] = nd;
      stamp_[rel.target] = epoch_;
      heap.emplace(nd, rel.target);
    }
  }
  return kUnreachable;
}

}  // namespace embellish::core
