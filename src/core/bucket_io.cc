#include "core/bucket_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace embellish::core {

std::string SerializeBuckets(const BucketOrganization& org) {
  std::ostringstream out;
  out << "embellish-buckets 1\n";
  out << "buckets " << org.bucket_count() << "\n";
  for (size_t b = 0; b < org.bucket_count(); ++b) {
    out << "B";
    for (wordnet::TermId t : org.bucket(b)) out << " " << t;
    out << "\n";
  }
  return out.str();
}

Result<BucketOrganization> ParseBuckets(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "embellish-buckets 1") {
    return Status::Corruption("bad or missing bucket format header");
  }
  if (!std::getline(in, line) || !StartsWith(line, "buckets ")) {
    return Status::Corruption("missing 'buckets' count line");
  }
  size_t count = 0;
  try {
    count = std::stoull(line.substr(8));
  } catch (...) {
    return Status::Corruption("bad bucket count");
  }

  std::vector<std::vector<wordnet::TermId>> buckets;
  buckets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line) || !StartsWith(line, "B")) {
      return Status::Corruption(StringPrintf("missing bucket line %zu", i));
    }
    std::istringstream fields(line.substr(1));
    std::vector<wordnet::TermId> bucket;
    uint64_t tid;
    while (fields >> tid) {
      if (tid > wordnet::kInvalidTermId) {
        return Status::Corruption("term id out of range");
      }
      bucket.push_back(static_cast<wordnet::TermId>(tid));
    }
    buckets.push_back(std::move(bucket));
  }
  // Create() re-validates (non-empty buckets, no duplicate terms).
  return BucketOrganization::Create(std::move(buckets));
}

Status SaveBucketsToFile(const BucketOrganization& org,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << SerializeBuckets(org);
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<BucketOrganization> LoadBucketsFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseBuckets(buf.str());
}

}  // namespace embellish::core
