#include "core/bucket_organization.h"

#include "common/strings.h"

namespace embellish::core {

Result<BucketOrganization> BucketOrganization::Create(
    std::vector<std::vector<wordnet::TermId>> buckets) {
  BucketOrganization org;
  org.buckets_ = std::move(buckets);
  for (size_t b = 0; b < org.buckets_.size(); ++b) {
    const auto& bucket = org.buckets_[b];
    if (bucket.empty()) {
      return Status::InvalidArgument(
          StringPrintf("bucket %zu is empty", b));
    }
    org.nominal_bucket_size_ = std::max(org.nominal_bucket_size_,
                                        bucket.size());
    for (size_t slot = 0; slot < bucket.size(); ++slot) {
      auto [it, inserted] =
          org.locations_.try_emplace(bucket[slot], BucketSlot{b, slot});
      if (!inserted) {
        return Status::InvalidArgument(StringPrintf(
            "term %u appears in buckets %zu and %zu", bucket[slot],
            it->second.bucket, b));
      }
      ++org.term_count_;
    }
  }
  if (org.buckets_.empty()) {
    return Status::InvalidArgument("no buckets supplied");
  }
  return org;
}

Result<BucketSlot> BucketOrganization::Locate(wordnet::TermId term) const {
  auto it = locations_.find(term);
  if (it == locations_.end()) {
    return Status::NotFound(
        StringPrintf("term %u is not in any bucket", term));
  }
  return it->second;
}

}  // namespace embellish::core
