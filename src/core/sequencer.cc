#include "core/sequencer.h"

#include <algorithm>
#include <numeric>

namespace embellish::core {

namespace {

using wordnet::RelationType;
using wordnet::SynsetId;
using wordnet::TermId;
using wordnet::WordNetDatabase;

// The paper's closeness order (Algorithm 1 line 18).
constexpr RelationType kTraversalOrder[] = {
    RelationType::kDerivation, RelationType::kAntonym,
    RelationType::kHyponym,    RelationType::kHypernym,
    RelationType::kMeronym,    RelationType::kHolonym};

// Mutable sequencing state: a union of growable sequences with term ->
// sequence tracking so ProcessSynset can detect spans and concatenate.
class SequenceSet {
 public:
  explicit SequenceSet(size_t term_count)
      : term_sequence_(term_count, kNone) {}

  static constexpr size_t kNone = static_cast<size_t>(-1);

  size_t SequenceOf(TermId t) const { return Resolve(term_sequence_[t]); }

  size_t NewSequence() {
    sequences_.emplace_back();
    parent_.push_back(parent_.size());
    return sequences_.size() - 1;
  }

  void Append(size_t seq, TermId t) {
    seq = Resolve(seq);
    sequences_[seq].push_back(t);
    term_sequence_[t] = seq;
  }

  // Concatenates b onto a (a keeps its identity), returns a.
  size_t Concatenate(size_t a, size_t b) {
    a = Resolve(a);
    b = Resolve(b);
    if (a == b) return a;
    std::vector<TermId>& va = sequences_[a];
    std::vector<TermId>& vb = sequences_[b];
    va.insert(va.end(), vb.begin(), vb.end());
    vb.clear();
    vb.shrink_to_fit();
    parent_[b] = a;
    return a;
  }

  // Final sequences in creation order, empties dropped.
  std::vector<std::vector<TermId>> Extract() {
    std::vector<std::vector<TermId>> out;
    for (size_t i = 0; i < sequences_.size(); ++i) {
      if (Resolve(i) == i && !sequences_[i].empty()) {
        out.push_back(std::move(sequences_[i]));
      }
    }
    return out;
  }

 private:
  size_t Resolve(size_t s) const {
    if (s == kNone) return kNone;
    while (parent_[s] != s) s = parent_[s];
    return s;
  }

  std::vector<std::vector<TermId>> sequences_;
  std::vector<size_t> parent_;        // union-find over sequence ids
  std::vector<size_t> term_sequence_; // term -> sequence id (unresolved)
};

// Generic Algorithm-1 engine. The relation source is abstracted behind
// `neighbors(s)` — synsets related to s in DESCENDING closeness — so the
// baseline WordNet traversal and the Appendix C merged-source traversal
// share the sequencing/merging machinery.
class Sequencer {
 public:
  using NeighborFn = std::function<std::vector<SynsetId>(SynsetId)>;
  using FilterFn = std::function<bool(TermId)>;

  Sequencer(const WordNetDatabase& db, FilterFn filter, NeighborFn neighbors)
      : db_(db),
        filter_(std::move(filter)),
        neighbors_(std::move(neighbors)),
        seqs_(db.term_count()),
        synset_processed_(db.synset_count(), false),
        term_processed_(db.term_count(), false) {}

  SequencerResult Run() {
    // Line 12: order seed synsets by decreasing number of relationships
    // (ties by id for determinism).
    std::vector<SynsetId> order(db_.synset_count());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](SynsetId a, SynsetId b) {
                       return db_.synset(a).RelationCount() >
                              db_.synset(b).RelationCount();
                     });

    // Lines 16-21, with the "procedure is repeated" reading: each seed's
    // related synsets are themselves expanded, in closeness order, until
    // the wave dies out (depth-first, closest relation first). This is
    // what reproduces the paper's two §3.3 observations — the run over
    // WordNet coalesces into ONE long sequence, and hyponym siblings form
    // contiguous runs ('myosarcoma, neurosarcoma, ..., rhabdosarcoma').
    for (SynsetId seed : order) {
      if (synset_processed_[seed]) continue;
      std::vector<SynsetId> stack{seed};
      size_t sq = SequenceSet::kNone;
      while (!stack.empty()) {
        SynsetId s = stack.back();
        stack.pop_back();
        if (synset_processed_[s]) continue;
        sq = ProcessSynset(s, sq);
        // Push so the CLOSEST relation is popped first.
        std::vector<SynsetId> related = neighbors_(s);
        for (size_t i = related.size(); i-- > 0;) {
          if (!synset_processed_[related[i]]) stack.push_back(related[i]);
        }
      }
    }

    SequencerResult result;
    result.sequences = seqs_.Extract();
    return result;
  }

 private:
  bool Eligible(TermId t) const { return !filter_ || filter_(t); }

  // Algorithm 1 lines 1-11. `current` is the sequence of the traversal
  // wave that reached this synset (kNone for a fresh seed) — the line-19
  // anchoring that keeps a wave's terms in one sequence. Returns the
  // sequence the synset's terms went into.
  size_t ProcessSynset(SynsetId ss, size_t current) {
    const wordnet::Synset& synset = db_.synset(ss);

    // Which existing sequences do this synset's terms touch? The wave's
    // own sequence counts as touched (the anchor term of line 19).
    std::vector<size_t> touched;
    if (current != SequenceSet::kNone) touched.push_back(current);
    for (TermId t : synset.terms) {
      size_t s = seqs_.SequenceOf(t);
      if (s != SequenceSet::kNone &&
          std::find(touched.begin(), touched.end(), s) == touched.end()) {
        touched.push_back(s);
      }
    }

    size_t sq;
    if (touched.size() > 1) {
      // Lines 1-3: concatenate the spanned sequences.
      sq = touched[0];
      for (size_t i = 1; i < touched.size(); ++i) {
        sq = seqs_.Concatenate(sq, touched[i]);
      }
    } else if (touched.empty()) {
      sq = seqs_.NewSequence();  // lines 4-5
    } else {
      sq = touched[0];  // lines 6-7
    }

    // Line 8: append the unprocessed terms.
    for (TermId t : synset.terms) {
      if (term_processed_[t] || !Eligible(t)) continue;
      seqs_.Append(sq, t);
      term_processed_[t] = true;  // line 9
    }
    synset_processed_[ss] = true;  // line 10
    return sq;
  }

  const WordNetDatabase& db_;
  FilterFn filter_;
  NeighborFn neighbors_;
  SequenceSet seqs_;
  std::vector<bool> synset_processed_;
  std::vector<bool> term_processed_;
};

}  // namespace

size_t SequencerResult::TotalTerms() const {
  size_t n = 0;
  for (const auto& s : sequences) n += s.size();
  return n;
}

SequencerResult SequenceDictionary(const WordNetDatabase& db,
                                   const SequencerOptions& options) {
  auto neighbors = [&db](SynsetId s) {
    std::vector<SynsetId> out;
    const auto& relations = db.synset(s).relations;
    for (RelationType type : kTraversalOrder) {
      for (const wordnet::Relation& rel : relations) {
        if (rel.type == type) out.push_back(rel.target);
      }
    }
    return out;
  };
  Sequencer sequencer(db, options.term_filter, neighbors);
  return sequencer.Run();
}

double RelationStrengths::OfType(wordnet::RelationType type) const {
  switch (type) {
    case RelationType::kDerivation:
      return derivation;
    case RelationType::kAntonym:
      return antonym;
    case RelationType::kHyponym:
      return hyponym;
    case RelationType::kHypernym:
      return hypernym;
    case RelationType::kMeronym:
      return meronym;
    case RelationType::kHolonym:
      return holonym;
    case RelationType::kDomain:
    case RelationType::kDomainMember:
      return 0.0;  // skipped, as in Algorithm 1
  }
  return 0.0;
}

SequencerResult SequenceDictionaryMerged(
    const WordNetDatabase& db,
    const std::vector<wordnet::ExtractedRelation>& extracted,
    const MergedSequencerOptions& options) {
  // Precompute the merged weighted adjacency. Extracted term relations are
  // lifted to the terms' primary synsets; WordNet relations carry the
  // configured per-type strengths. Each list is sorted by decreasing
  // strength (Appendix C: "iterate from the strongest term relations, down
  // to some minimum strength threshold"), ties by target id.
  std::vector<std::vector<std::pair<double, SynsetId>>> adj(
      db.synset_count());
  for (SynsetId s = 0; s < db.synset_count(); ++s) {
    for (const wordnet::Relation& rel : db.synset(s).relations) {
      double strength = options.wordnet_strengths.OfType(rel.type);
      if (strength >= options.min_strength) {
        adj[s].emplace_back(strength, rel.target);
      }
    }
  }
  for (const wordnet::ExtractedRelation& rel : extracted) {
    if (rel.strength < options.min_strength) continue;
    if (rel.a >= db.term_count() || rel.b >= db.term_count()) continue;
    const auto& sa = db.term(rel.a).synsets;
    const auto& sb = db.term(rel.b).synsets;
    if (sa.empty() || sb.empty()) continue;
    adj[sa[0]].emplace_back(rel.strength, sb[0]);
    adj[sb[0]].emplace_back(rel.strength, sa[0]);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end(),
              [](const auto& x, const auto& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;
              });
  }

  auto neighbors = [&adj](SynsetId s) {
    std::vector<SynsetId> out;
    out.reserve(adj[s].size());
    for (const auto& [strength, target] : adj[s]) out.push_back(target);
    return out;
  };
  Sequencer sequencer(db, options.term_filter, neighbors);
  return sequencer.Run();
}

}  // namespace embellish::core
