#include "core/private_retrieval.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"

namespace embellish::core {

void RetrievalCosts::Add(const RetrievalCosts& other) {
  server_io_ms += other.server_io_ms;
  server_cpu_ms += other.server_cpu_ms;
  uplink_bytes += other.uplink_bytes;
  downlink_bytes += other.downlink_bytes;
  user_cpu_ms += other.user_cpu_ms;
}

PrivateRetrievalServer::PrivateRetrievalServer(
    const index::InvertedIndex* index, const BucketOrganization* buckets,
    const storage::StorageLayout* layout,
    const storage::DiskModelOptions& disk_options,
    const PrivateRetrievalServerOptions& options, ThreadPool* pool)
    : index_(index),
      buckets_(buckets),
      layout_(layout),
      disk_options_(disk_options),
      options_(options),
      pool_(pool) {}

Result<EncryptedResult> PrivateRetrievalServer::Process(
    const EmbellishedQuery& query, const crypto::BenalohPublicKey& pk,
    RetrievalCosts* costs) const {
  if (query.entries.empty()) {
    return Status::InvalidArgument("empty embellished query");
  }

  // --- I/O: fetch each touched bucket once (Section 4: a bucket's lists
  // share disk blocks, so one extent read covers all its terms). ---
  if (layout_ != nullptr) {
    std::unordered_set<size_t> touched;
    for (const EmbellishedTerm& e : query.entries) {
      auto where = buckets_->Locate(e.term);
      if (where.ok()) touched.insert(where->bucket);
    }
    storage::SimulatedDisk disk(disk_options_);
    for (size_t b : touched) {
      EMB_RETURN_NOT_OK(layout_->ChargeGroupRead(b, &disk));
    }
    if (costs != nullptr) costs->server_io_ms += disk.accumulated_ms();
  }

  // --- CPU: Algorithm 4 proper. ---
  //
  // Entries are independent until the per-document merge (line 5), and
  // modular multiplication is commutative, so each worker accumulates into a
  // private map and the maps merge under a lock — the final residues are
  // bit-identical to serial evaluation in query order.
  CpuStopwatch serial_cpu;
  const bignum::MontgomeryContext& mont = pk.mont();
  const size_t k = mont.limb_count();
  const uint64_t* mont_one = mont.One().data();

  // Dense work list so the parallel loop indexes an array, not a filtered
  // iteration.
  struct EntryWork {
    const std::vector<index::Posting>* list;
    const bignum::BigInt* indicator;
  };
  std::vector<EntryWork> work;
  work.reserve(query.entries.size());
  for (const EmbellishedTerm& entry : query.entries) {
    const std::vector<index::Posting>* list = index_->postings(entry.term);
    if (list == nullptr || list->empty()) continue;
    work.push_back(EntryWork{list, &entry.indicator.value});
  }

  // Accumulators in Montgomery form keyed by document.
  std::unordered_map<corpus::DocId, std::vector<uint64_t>> acc;
  std::mutex acc_mu;

  auto process_entries = [&](size_t begin, size_t end) {
    bignum::MontgomeryContext::Scratch scratch(mont);
    std::unordered_map<corpus::DocId, std::vector<uint64_t>> local;
    std::vector<uint64_t> c_mont(k);
    std::vector<uint64_t> powered(k);
    std::vector<uint64_t> table;  // flat power table, grows once per worker

    for (size_t w = begin; w < end; ++w) {
      const std::vector<index::Posting>& list = *work[w].list;
      mont.ToMontgomeryInto(*work[w].indicator, c_mont.data(), &scratch);

      // E(u)^p for the discretized impacts p in [1, 255]. For long lists a
      // power table turns each posting into a single MontMul; short lists
      // use direct square-and-multiply to avoid the table's setup cost.
      uint32_t max_impact = 0;
      for (const index::Posting& p : list) {
        max_impact = std::max(max_impact, p.impact);
      }
      const bool use_table = options_.use_power_table && list.size() >= 64;
      if (use_table) {
        if (table.size() < (max_impact + 1) * k) {
          table.resize((max_impact + 1) * k);
        }
        std::memcpy(table.data(), mont_one, k * sizeof(uint64_t));
        for (uint32_t e = 1; e <= max_impact; ++e) {
          mont.MontMulInto(table.data() + (e - 1) * k, c_mont.data(),
                           table.data() + e * k, &scratch);
        }
      }

      for (const index::Posting& p : list) {
        const uint64_t* pw;
        if (use_table) {
          pw = table.data() + p.impact * k;
        } else {
          std::memcpy(powered.data(), mont_one, k * sizeof(uint64_t));
          for (int bit = std::bit_width(p.impact); bit-- > 0;) {
            mont.MontMulInto(powered.data(), powered.data(), powered.data(),
                             &scratch);
            if ((p.impact >> bit) & 1) {
              mont.MontMulInto(powered.data(), c_mont.data(), powered.data(),
                               &scratch);
            }
          }
          pw = powered.data();
        }
        auto [it, inserted] = local.try_emplace(p.doc);
        if (inserted) {
          it->second.assign(pw, pw + k);
        } else {
          mont.MontMulInto(it->second.data(), pw, it->second.data(),
                           &scratch);  // line 5
        }
      }
    }

    std::lock_guard<std::mutex> lock(acc_mu);
    for (auto& [doc, value] : local) {
      auto [it, inserted] = acc.try_emplace(doc, std::move(value));
      if (!inserted) {
        mont.MontMulInto(it->second.data(), value.data(), it->second.data(),
                         &scratch);
      }
    }
  };

  double cpu_ms = serial_cpu.ElapsedMillis();
  serial_cpu.Restart();
  if (pool_ != nullptr) {
    cpu_ms += pool_->ParallelFor(0, work.size(), /*min_grain=*/1,
                                 process_entries);
    serial_cpu.Restart();
  } else {
    process_entries(0, work.size());
  }

  EncryptedResult result;
  result.candidates.reserve(acc.size());
  {
    bignum::MontgomeryContext::Scratch scratch(mont);
    std::vector<uint64_t> plain(k);
    for (auto& [doc, score_mont] : acc) {
      mont.FromMontgomeryInto(score_mont.data(), plain.data(), &scratch);
      result.candidates.push_back(EncryptedCandidate{
          doc, crypto::BenalohCiphertext{bignum::BigInt::FromLimbs(plain)}});
    }
  }
  // Canonical order so results are deterministic on the wire.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const EncryptedCandidate& a, const EncryptedCandidate& b) {
              return a.doc < b.doc;
            });
  cpu_ms += serial_cpu.ElapsedMillis();

  if (costs != nullptr) {
    costs->server_cpu_ms += cpu_ms;
    costs->downlink_bytes += result.WireBytes(pk);
  }
  return result;
}

PrivateRetrievalClient::PrivateRetrievalClient(
    const BucketOrganization* buckets,
    const crypto::BenalohPublicKey* public_key,
    const crypto::BenalohPrivateKey* private_key, ThreadPool* pool)
    : embellisher_(buckets, public_key, pool),
      public_key_(public_key),
      private_key_(private_key) {}

Result<EmbellishedQuery> PrivateRetrievalClient::FormulateQuery(
    const std::vector<wordnet::TermId>& genuine_terms, Rng* rng,
    RetrievalCosts* costs) const {
  CpuStopwatch cpu;
  EMB_ASSIGN_OR_RETURN(EmbellishedQuery query,
                       embellisher_.Embellish(genuine_terms, rng));
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
    costs->uplink_bytes += query.WireBytes(*public_key_);
  }
  return query;
}

Result<std::vector<index::ScoredDoc>> PrivateRetrievalClient::PostFilter(
    const EncryptedResult& result, size_t k, RetrievalCosts* costs) const {
  CpuStopwatch cpu;
  std::vector<index::ScoredDoc> scored;
  scored.reserve(result.candidates.size());
  for (const EncryptedCandidate& cand : result.candidates) {
    EMB_ASSIGN_OR_RETURN(uint64_t score, private_key_->Decrypt(cand.score));
    if (score > 0) {
      scored.push_back(index::ScoredDoc{cand.doc, score});
    }
  }
  index::SortByScore(&scored);
  if (scored.size() > k) scored.resize(k);
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
  }
  return scored;
}

Result<std::vector<index::ScoredDoc>> RunPrivateQuery(
    const PrivateRetrievalClient& client, const PrivateRetrievalServer& server,
    const crypto::BenalohPublicKey& pk,
    const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
    RetrievalCosts* costs) {
  EMB_ASSIGN_OR_RETURN(EmbellishedQuery query,
                       client.FormulateQuery(genuine_terms, rng, costs));
  EMB_ASSIGN_OR_RETURN(EncryptedResult encrypted,
                       server.Process(query, pk, costs));
  return client.PostFilter(encrypted, k, costs);
}

}  // namespace embellish::core
