#include "core/private_retrieval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"

namespace embellish::core {

void RetrievalCosts::Add(const RetrievalCosts& other) {
  server_io_ms += other.server_io_ms;
  server_cpu_ms += other.server_cpu_ms;
  uplink_bytes += other.uplink_bytes;
  downlink_bytes += other.downlink_bytes;
  user_cpu_ms += other.user_cpu_ms;
}

PrivateRetrievalServer::PrivateRetrievalServer(
    const index::InvertedIndex* index, const BucketOrganization* buckets,
    const storage::StorageLayout* layout,
    const storage::DiskModelOptions& disk_options,
    const PrivateRetrievalServerOptions& options)
    : index_(index),
      buckets_(buckets),
      layout_(layout),
      disk_options_(disk_options),
      options_(options) {}

Result<EncryptedResult> PrivateRetrievalServer::Process(
    const EmbellishedQuery& query, const crypto::BenalohPublicKey& pk,
    RetrievalCosts* costs) const {
  if (query.entries.empty()) {
    return Status::InvalidArgument("empty embellished query");
  }

  // --- I/O: fetch each touched bucket once (Section 4: a bucket's lists
  // share disk blocks, so one extent read covers all its terms). ---
  if (layout_ != nullptr) {
    std::unordered_set<size_t> touched;
    for (const EmbellishedTerm& e : query.entries) {
      auto where = buckets_->Locate(e.term);
      if (where.ok()) touched.insert(where->bucket);
    }
    storage::SimulatedDisk disk(disk_options_);
    for (size_t b : touched) layout_->ChargeGroupRead(b, &disk);
    if (costs != nullptr) costs->server_io_ms += disk.accumulated_ms();
  }

  // --- CPU: Algorithm 4 proper. ---
  CpuStopwatch cpu;
  const bignum::MontgomeryContext& mont = pk.mont();
  const std::vector<uint64_t> mont_one = mont.One();

  // Accumulators in Montgomery form keyed by document.
  std::unordered_map<corpus::DocId, std::vector<uint64_t>> acc;

  for (const EmbellishedTerm& entry : query.entries) {
    const std::vector<index::Posting>* list = index_->postings(entry.term);
    if (list == nullptr || list->empty()) continue;

    const std::vector<uint64_t> c_mont = mont.ToMontgomery(entry.indicator.value);

    // E(u)^p for the discretized impacts p in [1, 255]. For long lists a
    // power table turns each posting into a single MontMul; short lists use
    // direct square-and-multiply to avoid the table's setup cost.
    uint32_t max_impact = 0;
    for (const index::Posting& p : *list) {
      max_impact = std::max(max_impact, p.impact);
    }

    auto pow_direct = [&](uint32_t e) {
      std::vector<uint64_t> result = mont_one;
      for (int bit = 31; bit >= 0; --bit) {
        result = mont.MontMul(result, result);
        if ((e >> bit) & 1) result = mont.MontMul(result, c_mont);
      }
      return result;
    };

    std::vector<std::vector<uint64_t>> power_table;
    const bool use_table = options_.use_power_table && list->size() >= 64;
    if (use_table) {
      power_table.resize(max_impact + 1);
      power_table[0] = mont_one;
      for (uint32_t e = 1; e <= max_impact; ++e) {
        power_table[e] = mont.MontMul(power_table[e - 1], c_mont);
      }
    }

    for (const index::Posting& p : *list) {
      const std::vector<uint64_t> powered =
          use_table ? power_table[p.impact] : pow_direct(p.impact);
      auto [it, inserted] = acc.try_emplace(p.doc, powered);
      if (!inserted) {
        it->second = mont.MontMul(it->second, powered);  // line 5
      }
    }
  }

  EncryptedResult result;
  result.candidates.reserve(acc.size());
  for (auto& [doc, score_mont] : acc) {
    result.candidates.push_back(
        EncryptedCandidate{doc, crypto::BenalohCiphertext{
                                    mont.FromMontgomery(score_mont)}});
  }
  // Canonical order so results are deterministic on the wire.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const EncryptedCandidate& a, const EncryptedCandidate& b) {
              return a.doc < b.doc;
            });

  if (costs != nullptr) {
    costs->server_cpu_ms += cpu.ElapsedMillis();
    costs->downlink_bytes += result.WireBytes(pk);
  }
  return result;
}

PrivateRetrievalClient::PrivateRetrievalClient(
    const BucketOrganization* buckets,
    const crypto::BenalohPublicKey* public_key,
    const crypto::BenalohPrivateKey* private_key)
    : embellisher_(buckets, public_key),
      public_key_(public_key),
      private_key_(private_key) {}

Result<EmbellishedQuery> PrivateRetrievalClient::FormulateQuery(
    const std::vector<wordnet::TermId>& genuine_terms, Rng* rng,
    RetrievalCosts* costs) const {
  CpuStopwatch cpu;
  EMB_ASSIGN_OR_RETURN(EmbellishedQuery query,
                       embellisher_.Embellish(genuine_terms, rng));
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
    costs->uplink_bytes += query.WireBytes(*public_key_);
  }
  return query;
}

Result<std::vector<index::ScoredDoc>> PrivateRetrievalClient::PostFilter(
    const EncryptedResult& result, size_t k, RetrievalCosts* costs) const {
  CpuStopwatch cpu;
  std::vector<index::ScoredDoc> scored;
  scored.reserve(result.candidates.size());
  for (const EncryptedCandidate& cand : result.candidates) {
    EMB_ASSIGN_OR_RETURN(uint64_t score, private_key_->Decrypt(cand.score));
    if (score > 0) {
      scored.push_back(index::ScoredDoc{cand.doc, score});
    }
  }
  index::SortByScore(&scored);
  if (scored.size() > k) scored.resize(k);
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
  }
  return scored;
}

Result<std::vector<index::ScoredDoc>> RunPrivateQuery(
    const PrivateRetrievalClient& client, const PrivateRetrievalServer& server,
    const crypto::BenalohPublicKey& pk,
    const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
    RetrievalCosts* costs) {
  EMB_ASSIGN_OR_RETURN(EmbellishedQuery query,
                       client.FormulateQuery(genuine_terms, rng, costs));
  EMB_ASSIGN_OR_RETURN(EncryptedResult encrypted,
                       server.Process(query, pk, costs));
  return client.PostFilter(encrypted, k, costs);
}

}  // namespace embellish::core
