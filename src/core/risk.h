// Privacy-risk evaluation metrics (Section 5.1).
//
// Two bucket-quality measures, each compared against the Random baseline:
//  * Intra-bucket specificity difference — max minus min specificity within
//    a bucket, averaged over buckets. Small is good: recurring
//    high-specificity query terms then attract similarly specific decoys.
//  * Inter-bucket distance difference — pick two random buckets and a slot
//    i; the "user query" is the pair of slot-i terms; every other slot j
//    provides a decoy pair. Report |dist(genuine) - dist(decoy_j)|,
//    minimized over j ("closest cover") and maximized ("farthest cover"),
//    averaged over trials.

#ifndef EMBELLISH_CORE_RISK_H_
#define EMBELLISH_CORE_RISK_H_

#include "common/rng.h"
#include "common/status.h"
#include "core/bucket_organization.h"
#include "core/semantic_distance.h"
#include "core/specificity.h"

namespace embellish::core {

/// \brief Closest/farthest cover statistics from the distance experiment.
struct DistanceDifferenceStats {
  double avg_closest = 0.0;
  double avg_farthest = 0.0;
  size_t trials = 0;
};

/// \brief Evaluates bucket organizations against the §5.1 metrics.
class RiskEvaluator {
 public:
  /// \brief Distances beyond this cutoff are clamped (the synthetic synset
  ///        graph is connected, but a cutoff keeps Dijkstra bounded).
  static constexpr double kDistanceCutoff = 48.0;

  RiskEvaluator(const wordnet::WordNetDatabase* db,
                const SpecificityMap* specificity,
                const SemanticDistanceCalculator* distance);

  /// \brief Average over buckets of (max - min) member specificity.
  double AvgIntraBucketSpecificityDifference(
      const BucketOrganization& org) const;

  /// \brief The distance-difference experiment, `trials` repetitions (the
  ///        paper uses 1,000).
  DistanceDifferenceStats MeasureDistanceDifference(
      const BucketOrganization& org, size_t trials, Rng* rng) const;

 private:
  const wordnet::WordNetDatabase* db_;
  const SpecificityMap* specificity_;
  const SemanticDistanceCalculator* distance_;
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_RISK_H_
