// The bucket organization: the data structure at the heart of the scheme.
//
// Every dictionary term lives in exactly one bucket; a query term always
// pulls in its whole bucket (the other members acting as decoys). See
// Figure 1 and Section 3.

#ifndef EMBELLISH_CORE_BUCKET_ORGANIZATION_H_
#define EMBELLISH_CORE_BUCKET_ORGANIZATION_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "wordnet/database.h"

namespace embellish::core {

/// \brief Location of a term inside the organization.
struct BucketSlot {
  size_t bucket = 0;
  size_t slot = 0;
};

/// \brief Immutable assignment of terms to buckets.
class BucketOrganization {
 public:
  /// \brief Builds from explicit bucket contents; every term must appear at
  ///        most once across all buckets.
  static Result<BucketOrganization> Create(
      std::vector<std::vector<wordnet::TermId>> buckets);

  size_t bucket_count() const { return buckets_.size(); }

  const std::vector<wordnet::TermId>& bucket(size_t b) const {
    return buckets_[b];
  }

  const std::vector<std::vector<wordnet::TermId>>& buckets() const {
    return buckets_;
  }

  /// \brief Nominal bucket size (largest bucket; tail buckets may be
  ///        smaller when N is not divisible).
  size_t nominal_bucket_size() const { return nominal_bucket_size_; }

  /// \brief Total terms across all buckets.
  size_t term_count() const { return term_count_; }

  /// \brief True if the term is covered by the organization.
  bool Contains(wordnet::TermId term) const {
    return locations_.count(term) > 0;
  }

  /// \brief Where `term` lives; error if the term is not covered.
  Result<BucketSlot> Locate(wordnet::TermId term) const;

 private:
  std::vector<std::vector<wordnet::TermId>> buckets_;
  std::unordered_map<wordnet::TermId, BucketSlot> locations_;
  size_t nominal_bucket_size_ = 0;
  size_t term_count_ = 0;
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_BUCKET_ORGANIZATION_H_
