#include "core/embellisher.h"

#include <algorithm>
#include <unordered_set>

namespace embellish::core {

QueryEmbellisher::QueryEmbellisher(
    const BucketOrganization* buckets,
    const crypto::BenalohPublicKey* public_key, ThreadPool* pool)
    : buckets_(buckets), public_key_(public_key), pool_(pool) {}

Result<EmbellishedQuery> QueryEmbellisher::Embellish(
    const std::vector<wordnet::TermId>& genuine_terms, Rng* rng) const {
  if (genuine_terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }

  // Collapse duplicates; resolve every genuine term's host bucket first so
  // an unknown term fails the whole query before any encryption happens.
  std::unordered_set<wordnet::TermId> genuine(genuine_terms.begin(),
                                              genuine_terms.end());
  std::vector<size_t> host_buckets;
  for (wordnet::TermId t : genuine_terms) {
    EMB_ASSIGN_OR_RETURN(BucketSlot where, buckets_->Locate(t));
    host_buckets.push_back(where.bucket);
  }
  std::sort(host_buckets.begin(), host_buckets.end());
  host_buckets.erase(std::unique(host_buckets.begin(), host_buckets.end()),
                     host_buckets.end());

  // Lines 2-8: from each host bucket take every member; genuine terms get
  // E(1), the rest E(0). The indicators are encrypted as one batch so the
  // per-term modexps can fan out over the pool.
  std::vector<wordnet::TermId> terms;
  std::vector<uint64_t> indicators;
  for (size_t b : host_buckets) {
    for (wordnet::TermId t : buckets_->bucket(b)) {
      terms.push_back(t);
      indicators.push_back(genuine.count(t) ? 1 : 0);
    }
  }
  EMB_ASSIGN_OR_RETURN(std::vector<crypto::BenalohCiphertext> ciphertexts,
                       public_key_->EncryptBatch(indicators, rng, pool_));

  EmbellishedQuery query;
  query.entries.reserve(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    query.entries.push_back(
        EmbellishedTerm{terms[i], std::move(ciphertexts[i])});
  }

  // Final permutation: deny the server any positional grouping signal.
  rng->Shuffle(&query.entries);
  return query;
}

}  // namespace embellish::core
