#include "core/embellisher.h"

#include <algorithm>
#include <unordered_set>

namespace embellish::core {

QueryEmbellisher::QueryEmbellisher(
    const BucketOrganization* buckets,
    const crypto::BenalohPublicKey* public_key)
    : buckets_(buckets), public_key_(public_key) {}

Result<EmbellishedQuery> QueryEmbellisher::Embellish(
    const std::vector<wordnet::TermId>& genuine_terms, Rng* rng) const {
  if (genuine_terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }

  // Collapse duplicates; resolve every genuine term's host bucket first so
  // an unknown term fails the whole query before any encryption happens.
  std::unordered_set<wordnet::TermId> genuine(genuine_terms.begin(),
                                              genuine_terms.end());
  std::vector<size_t> host_buckets;
  for (wordnet::TermId t : genuine_terms) {
    EMB_ASSIGN_OR_RETURN(BucketSlot where, buckets_->Locate(t));
    host_buckets.push_back(where.bucket);
  }
  std::sort(host_buckets.begin(), host_buckets.end());
  host_buckets.erase(std::unique(host_buckets.begin(), host_buckets.end()),
                     host_buckets.end());

  // Lines 2-8: from each host bucket take every member; genuine terms get
  // E(1), the rest E(0).
  EmbellishedQuery query;
  for (size_t b : host_buckets) {
    for (wordnet::TermId t : buckets_->bucket(b)) {
      uint64_t u = genuine.count(t) ? 1 : 0;
      EMB_ASSIGN_OR_RETURN(crypto::BenalohCiphertext c,
                           public_key_->Encrypt(u, rng));
      query.entries.push_back(EmbellishedTerm{t, std::move(c)});
    }
  }

  // Final permutation: deny the server any positional grouping signal.
  rng->Shuffle(&query.entries);
  return query;
}

}  // namespace embellish::core
