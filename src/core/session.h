// Search sessions (Section 1's "recurring high-specificity search terms"
// threat and Section 3.1's sequence model).
//
// A SearchSession owns the client-side state for a sequence of queries:
// the Benaloh keypair, the embellisher, and the history needed to reason
// about what the server observes. Because a genuine term's decoys are a
// deterministic function of the bucket organization, a term recurring across
// the session always arrives with the same co-bucket decoys — intersecting
// the session's queries yields whole buckets, never the genuine term alone.

#ifndef EMBELLISH_CORE_SESSION_H_
#define EMBELLISH_CORE_SESSION_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/embellisher.h"
#include "wordnet/database.h"

namespace embellish::core {

/// \brief What the search engine observes for one query: the permuted term
///        multiset (ciphertexts omitted — they are indistinguishable from
///        random by construction).
struct AdversaryView {
  std::vector<wordnet::TermId> observed_terms;
};

/// \brief Client-side session state.
class SearchSession {
 public:
  /// \brief All pointers must outlive the session.
  SearchSession(const wordnet::WordNetDatabase* db,
                const BucketOrganization* buckets,
                const crypto::BenalohPublicKey* public_key, uint64_t seed);

  /// \brief Embellishes a query given as term texts (convenience for
  ///        examples); unknown words produce NotFound.
  Result<EmbellishedQuery> IssueQuery(
      const std::vector<std::string>& genuine_words);

  /// \brief Embellishes a query given as term ids.
  Result<EmbellishedQuery> IssueQueryByIds(
      const std::vector<wordnet::TermId>& genuine_terms);

  /// \brief Number of queries issued so far.
  size_t query_count() const { return history_.size(); }

  /// \brief Server-side view of the i-th issued query.
  const AdversaryView& observed(size_t i) const { return history_[i]; }

  /// \brief Terms present in every observed query of the session — the
  ///        intersection attack of Section 1. With bucket-consistent decoys
  ///        this is always a union of whole buckets.
  std::vector<wordnet::TermId> IntersectObservedQueries() const;

 private:
  const wordnet::WordNetDatabase* db_;
  QueryEmbellisher embellisher_;
  Rng rng_;
  std::vector<AdversaryView> history_;
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_SESSION_H_
