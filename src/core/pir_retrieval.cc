#include "core/pir_retrieval.h"

#include <algorithm>
#include <map>
#include <span>
#include <unordered_set>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace embellish::core {

namespace {

// Column payload: [4-byte BE length][list bytes][zero padding].
std::vector<uint8_t> EncodeColumn(const std::vector<uint8_t>& list_bytes,
                                  size_t padded_payload) {
  std::vector<uint8_t> out;
  out.reserve(4 + padded_payload);
  uint32_t len = static_cast<uint32_t>(list_bytes.size());
  out.push_back(static_cast<uint8_t>(len >> 24));
  out.push_back(static_cast<uint8_t>(len >> 16));
  out.push_back(static_cast<uint8_t>(len >> 8));
  out.push_back(static_cast<uint8_t>(len));
  out.insert(out.end(), list_bytes.begin(), list_bytes.end());
  out.resize(4 + padded_payload, 0);
  return out;
}

}  // namespace

PirRetrievalServer::PirRetrievalServer(
    const index::InvertedIndex* index, const BucketOrganization* buckets,
    const storage::StorageLayout* layout,
    const storage::DiskModelOptions& disk_options, ThreadPool* pool)
    : index_(index),
      buckets_(buckets),
      layout_(layout),
      disk_options_(disk_options),
      pool_(pool) {}

Result<const crypto::PirDatabase*> PirRetrievalServer::BucketMatrix(
    size_t bucket) const {
  if (bucket >= buckets_->bucket_count()) {
    return Status::OutOfRange(StringPrintf("bucket %zu out of range", bucket));
  }
  // Lazy materialization happens under the lock (a per-epoch warm-up cost);
  // the common case — the matrix already exists — holds it only for the
  // lookup, so concurrent queries never serialize behind each other's
  // compute.
  std::lock_guard<std::mutex> lock(*matrix_mu_);
  auto it = matrix_cache_.find(bucket);
  if (it != matrix_cache_.end()) return it->second.get();

  const std::vector<wordnet::TermId>& members = buckets_->bucket(bucket);
  size_t max_bytes = 0;
  for (wordnet::TermId t : members) {
    max_bytes = std::max(max_bytes, index_->ListBytes(t));
  }
  const size_t rows = (4 + max_bytes) * 8;
  auto matrix =
      std::make_unique<crypto::PirDatabase>(rows, members.size());
  for (size_t col = 0; col < members.size(); ++col) {
    std::vector<uint8_t> column =
        EncodeColumn(index_->SerializeList(members[col]), max_bytes);
    matrix->SetColumnFromBytes(col, column);
  }
  const crypto::PirDatabase* out = matrix.get();
  matrix_cache_.emplace(bucket, std::move(matrix));
  return out;
}

Result<crypto::PirResponse> PirRetrievalServer::Answer(
    size_t bucket, const crypto::PirQuery& query,
    RetrievalCosts* costs) const {
  EMB_ASSIGN_OR_RETURN(const crypto::PirDatabase* matrix,
                       BucketMatrix(bucket));

  // I/O: the protocol touches every list in the bucket ("the generation of
  // the output involves all the terms in the bucket"), one extent fetch.
  if (layout_ != nullptr && costs != nullptr) {
    storage::SimulatedDisk disk(disk_options_);
    EMB_RETURN_NOT_OK(layout_->ChargeGroupRead(bucket, &disk));
    costs->server_io_ms += disk.accumulated_ms();
  }

  // CPU is accounted inside Answer (summed across pool workers when the
  // evaluation is parallel), not with a caller-side stopwatch, which would
  // miss the cycles worker threads burn.
  crypto::PirServer server_impl(
      std::shared_ptr<const crypto::PirDatabase>(matrix, [](auto*) {}), pool_);
  double cpu_ms = 0.0;
  EMB_ASSIGN_OR_RETURN(crypto::PirResponse response,
                       server_impl.Answer(query, nullptr, &cpu_ms));
  if (costs != nullptr) {
    costs->server_cpu_ms += cpu_ms;
  }
  return response;
}

Result<std::vector<crypto::PirResponse>> PirRetrievalServer::AnswerBatch(
    const std::vector<PirBatchItem>& items, RetrievalCosts* costs,
    crypto::PirBatchStats* stats) const {
  std::vector<crypto::PirResponse> responses(items.size());
  if (items.empty()) return responses;

  // Group item indices by bucket (ordered, so evaluation order is
  // deterministic), preserving arrival order within each group.
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].query == nullptr) {
      return Status::InvalidArgument("null query in PIR batch item");
    }
    groups[items[i].bucket].push_back(i);
  }

  for (const auto& [bucket, indices] : groups) {
    EMB_ASSIGN_OR_RETURN(const crypto::PirDatabase* matrix,
                         BucketMatrix(bucket));

    // I/O: one bucket fetch per group — the shared sweep touches every list
    // in the bucket once for all of the group's queries.
    if (layout_ != nullptr && costs != nullptr) {
      storage::SimulatedDisk disk(disk_options_);
      EMB_RETURN_NOT_OK(layout_->ChargeGroupRead(bucket, &disk));
      costs->server_io_ms += disk.accumulated_ms();
    }

    std::vector<const crypto::PirQuery*> queries;
    queries.reserve(indices.size());
    for (size_t i : indices) queries.push_back(items[i].query);

    crypto::PirServer server_impl(
        std::shared_ptr<const crypto::PirDatabase>(matrix, [](auto*) {}),
        pool_);
    crypto::PirBatchStats group_stats;
    EMB_ASSIGN_OR_RETURN(
        std::vector<crypto::PirResponse> group,
        server_impl.AnswerBatch(
            std::span<const crypto::PirQuery* const>(queries), &group_stats));
    for (size_t j = 0; j < indices.size(); ++j) {
      responses[indices[j]] = std::move(group[j]);
    }
    if (costs != nullptr) costs->server_cpu_ms += group_stats.cpu_ms;
    if (stats != nullptr) stats->Add(group_stats);
  }
  return responses;
}

PirRetrievalClient::PirRetrievalClient(const BucketOrganization* buckets,
                                       crypto::PirClient pir_client)
    : buckets_(buckets), pir_client_(std::move(pir_client)) {}

Result<PirRetrievalClient> PirRetrievalClient::Create(
    const BucketOrganization* buckets, size_t key_bits, Rng* rng) {
  EMB_ASSIGN_OR_RETURN(crypto::PirClient pir_client,
                       crypto::PirClient::Create(key_bits, rng));
  return PirRetrievalClient(buckets, std::move(pir_client));
}

Result<std::vector<index::Posting>> PostingsFromColumnBits(
    const std::vector<bool>& bits) {
  if (bits.size() < 32 || bits.size() % 8 != 0) {
    return Status::Corruption("PIR response has invalid bit count");
  }
  std::vector<uint8_t> bytes(bits.size() / 8, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<uint8_t>(1u << (7 - i % 8));
  }
  const uint32_t len = (static_cast<uint32_t>(bytes[0]) << 24) |
                       (static_cast<uint32_t>(bytes[1]) << 16) |
                       (static_cast<uint32_t>(bytes[2]) << 8) |
                       static_cast<uint32_t>(bytes[3]);
  if (len > bytes.size() - 4) {
    return Status::Corruption("PIR column length prefix exceeds payload");
  }
  std::vector<uint8_t> list_bytes(bytes.begin() + 4, bytes.begin() + 4 + len);
  return index::InvertedIndex::DeserializeList(list_bytes);
}

Result<std::vector<index::Posting>> PirRetrievalClient::RetrieveList(
    const PirRetrievalServer& server, wordnet::TermId term, Rng* rng,
    RetrievalCosts* costs) const {
  EMB_ASSIGN_OR_RETURN(BucketSlot where, buckets_->Locate(term));
  const size_t cols = buckets_->bucket(where.bucket).size();

  CpuStopwatch cpu;
  EMB_ASSIGN_OR_RETURN(crypto::PirQuery query,
                       pir_client_.BuildQuery(where.slot, cols, rng));
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
    costs->uplink_bytes += query.WireBytes();
  }

  EMB_ASSIGN_OR_RETURN(crypto::PirResponse response,
                       server.Answer(where.bucket, query, costs));
  if (costs != nullptr) {
    costs->downlink_bytes +=
        response.WireBytes(pir_client_.key_bytes());
  }

  cpu.Restart();
  EMB_ASSIGN_OR_RETURN(std::vector<bool> bits,
                       pir_client_.DecodeResponse(response));
  auto postings = PostingsFromColumnBits(bits);
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
  }
  return postings;
}

Result<std::vector<index::ScoredDoc>> RankRetrievedLists(
    const std::vector<wordnet::TermId>& genuine_terms, size_t k,
    RetrievalCosts* costs,
    const std::function<Result<std::vector<index::Posting>>(wordnet::TermId)>&
        retrieve) {
  if (genuine_terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }
  // One execution per distinct genuine term ("their inverted lists have to
  // be fetched one at a time").
  std::vector<wordnet::TermId> distinct = genuine_terms;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  std::unordered_map<corpus::DocId, uint64_t> acc;
  for (wordnet::TermId term : distinct) {
    EMB_ASSIGN_OR_RETURN(std::vector<index::Posting> list, retrieve(term));
    CpuStopwatch cpu;
    for (const index::Posting& p : list) acc[p.doc] += p.impact;
    if (costs != nullptr) costs->user_cpu_ms += cpu.ElapsedMillis();
  }

  std::vector<index::ScoredDoc> scored;
  scored.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    scored.push_back(index::ScoredDoc{doc, score});
  }
  index::SortByScore(&scored);
  if (scored.size() > k) scored.resize(k);
  return scored;
}

Result<std::vector<index::ScoredDoc>> PirRetrievalClient::RunQuery(
    const PirRetrievalServer& server,
    const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
    RetrievalCosts* costs) const {
  return RankRetrievedLists(
      genuine_terms, k, costs, [&](wordnet::TermId term) {
        return RetrieveList(server, term, rng, costs);
      });
}

}  // namespace embellish::core
