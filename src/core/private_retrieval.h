// The Private Retrieval (PR) scheme: server-side Algorithm 4 and client-side
// Algorithm 5, with the cost accounting used by the Section 5.2 experiments.
//
// The server walks the inverted list of every (genuine or decoy) term in the
// embellished query and accumulates, per candidate document,
//     E(score_j) <- E(score_j) * E(u_i)^{p_ij}  =  E(score_j + u_i * p_ij),
// so only genuine terms (u_i = 1) contribute to the plaintext score while
// every list is touched identically — the engine cannot tell which terms
// mattered (Claim 1 guarantees the final ranking equals a plaintext engine's
// ranking over the genuine terms alone).

#ifndef EMBELLISH_CORE_PRIVATE_RETRIEVAL_H_
#define EMBELLISH_CORE_PRIVATE_RETRIEVAL_H_

#include <vector>

#include "common/status.h"
#include "core/bucket_organization.h"
#include "core/embellisher.h"
#include "crypto/benaloh.h"
#include "index/inverted_index.h"
#include "index/topk.h"
#include "storage/block_device.h"
#include "storage/layout.h"

namespace embellish::core {

/// \brief Cost metrics for one query (the four §5.2 panels plus splits).
struct RetrievalCosts {
  double server_io_ms = 0.0;        ///< simulated disk model
  double server_cpu_ms = 0.0;       ///< measured thread CPU time
  uint64_t uplink_bytes = 0;        ///< user -> server
  uint64_t downlink_bytes = 0;      ///< server -> user (the paper's Traffic)
  double user_cpu_ms = 0.0;         ///< query formulation + post filtering

  void Add(const RetrievalCosts& other);
};

/// \brief One candidate document with its encrypted relevance score.
struct EncryptedCandidate {
  corpus::DocId doc;
  crypto::BenalohCiphertext score;
};

/// \brief The candidate set R returned by Algorithm 4.
struct EncryptedResult {
  std::vector<EncryptedCandidate> candidates;

  /// \brief Downlink wire size: 4-byte doc id + ciphertext per candidate.
  size_t WireBytes(const crypto::BenalohPublicKey& pk) const {
    return candidates.size() * (4 + pk.CiphertextBytes());
  }
};

/// \brief Algorithm 4 execution options.
struct PrivateRetrievalServerOptions {
  /// When true (default), E(u)^p is computed via a per-term power table so
  /// each posting costs one modular multiplication. When false, every
  /// posting pays a full square-and-multiply modexp — the behaviour of the
  /// paper's 2010 implementation, whose server CPU exceeds PIR's by ~19%
  /// (Figure 7b). The fig7/fig8 benches run paper-faithful mode; the
  /// ablation bench quantifies the speedup.
  bool use_power_table = true;
};

/// \brief Search-engine side of the PR scheme (Algorithm 4).
///
/// Entries of the embellished query are processed in parallel over `pool`
/// when one is supplied: each worker accumulates per-document products into
/// a private map on its own Montgomery scratch, and the maps are merged
/// under a lock. Modular multiplication is commutative, so the merged
/// residues are bit-identical to the serial evaluation.
class PrivateRetrievalServer {
 public:
  /// \brief `layout` maps bucket ids to disk extents; pass nullptr to skip
  ///        I/O accounting (unit tests). All pointers must outlive the
  ///        server. `pool` may be null (serial evaluation).
  PrivateRetrievalServer(
      const index::InvertedIndex* index, const BucketOrganization* buckets,
      const storage::StorageLayout* layout,
      const storage::DiskModelOptions& disk_options = {},
      const PrivateRetrievalServerOptions& options = {},
      ThreadPool* pool = nullptr);

  /// \brief Processes an embellished query; charges I/O and CPU to `costs`
  ///        (which may be null).
  Result<EncryptedResult> Process(const EmbellishedQuery& query,
                                  const crypto::BenalohPublicKey& pk,
                                  RetrievalCosts* costs) const;

 private:
  const index::InvertedIndex* index_;
  const BucketOrganization* buckets_;
  const storage::StorageLayout* layout_;
  storage::DiskModelOptions disk_options_;
  PrivateRetrievalServerOptions options_;
  ThreadPool* pool_;  // not owned; null => serial
};

/// \brief User side of the PR scheme: query formulation (Algorithm 3, via
///        QueryEmbellisher) and post filtering (Algorithm 5).
class PrivateRetrievalClient {
 public:
  /// \brief `pool` may be null (serial); it parallelizes the Algorithm 3
  ///        indicator encryptions.
  PrivateRetrievalClient(const BucketOrganization* buckets,
                         const crypto::BenalohPublicKey* public_key,
                         const crypto::BenalohPrivateKey* private_key,
                         ThreadPool* pool = nullptr);

  /// \brief Algorithm 3; charges encryption time and uplink to `costs`.
  Result<EmbellishedQuery> FormulateQuery(
      const std::vector<wordnet::TermId>& genuine_terms, Rng* rng,
      RetrievalCosts* costs) const;

  /// \brief Algorithm 5: decrypt scores, rank, return the top `k`
  ///        (score > 0 only). Charges decryption time and downlink.
  Result<std::vector<index::ScoredDoc>> PostFilter(
      const EncryptedResult& result, size_t k, RetrievalCosts* costs) const;

 private:
  QueryEmbellisher embellisher_;
  const crypto::BenalohPublicKey* public_key_;
  const crypto::BenalohPrivateKey* private_key_;
};

/// \brief End-to-end convenience: formulate, process, post-filter.
Result<std::vector<index::ScoredDoc>> RunPrivateQuery(
    const PrivateRetrievalClient& client, const PrivateRetrievalServer& server,
    const crypto::BenalohPublicKey& pk,
    const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
    RetrievalCosts* costs);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_PRIVATE_RETRIEVAL_H_
