#include "core/session.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace embellish::core {

SearchSession::SearchSession(const wordnet::WordNetDatabase* db,
                             const BucketOrganization* buckets,
                             const crypto::BenalohPublicKey* public_key,
                             uint64_t seed)
    : db_(db), embellisher_(buckets, public_key), rng_(seed) {}

Result<EmbellishedQuery> SearchSession::IssueQuery(
    const std::vector<std::string>& genuine_words) {
  std::vector<wordnet::TermId> ids;
  ids.reserve(genuine_words.size());
  for (const std::string& w : genuine_words) {
    wordnet::TermId id = db_->FindTerm(w);
    if (id == wordnet::kInvalidTermId) {
      return Status::NotFound("unknown term '" + w + "'");
    }
    ids.push_back(id);
  }
  return IssueQueryByIds(ids);
}

Result<EmbellishedQuery> SearchSession::IssueQueryByIds(
    const std::vector<wordnet::TermId>& genuine_terms) {
  EMB_ASSIGN_OR_RETURN(EmbellishedQuery query,
                       embellisher_.Embellish(genuine_terms, &rng_));
  AdversaryView view;
  view.observed_terms.reserve(query.entries.size());
  for (const EmbellishedTerm& e : query.entries) {
    view.observed_terms.push_back(e.term);
  }
  history_.push_back(std::move(view));
  return query;
}

std::vector<wordnet::TermId> SearchSession::IntersectObservedQueries() const {
  if (history_.empty()) return {};
  std::unordered_set<wordnet::TermId> common(
      history_[0].observed_terms.begin(), history_[0].observed_terms.end());
  for (size_t i = 1; i < history_.size(); ++i) {
    std::unordered_set<wordnet::TermId> next;
    for (wordnet::TermId t : history_[i].observed_terms) {
      if (common.count(t)) next.insert(t);
    }
    common = std::move(next);
  }
  std::vector<wordnet::TermId> out(common.begin(), common.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace embellish::core
