// Weighted semantic distance between terms (Section 5.1).
//
// "We define the semantic distance between two terms t1 and t2 as the length
// of the shortest path between their corresponding synsets. We assign a
// weight of 1 to a hypernym-hyponym relationship, and weights of 0.5, 2 and
// 3 for antonym, holonym-meronym, and domain-member relationships."

#ifndef EMBELLISH_CORE_SEMANTIC_DISTANCE_H_
#define EMBELLISH_CORE_SEMANTIC_DISTANCE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "wordnet/database.h"

namespace embellish::core {

/// \brief Per-relation-type edge weights for the distance graph.
struct SemanticDistanceWeights {
  double hypernym = 1.0;
  double hyponym = 1.0;
  double antonym = 0.5;
  double holonym = 2.0;
  double meronym = 2.0;
  double domain = 3.0;
  double domain_member = 3.0;
  /// Derivational relatedness is as tight as antonymy in WordNet practice.
  double derivation = 0.5;

  double WeightOf(wordnet::RelationType type) const;
};

/// \brief Shortest-path distance oracle over the synset graph.
///
/// Distances are computed on demand with a cutoff-bounded Dijkstra that
/// terminates as soon as any target synset is settled. Search state lives
/// in epoch-stamped dense arrays, so repeated queries (the §5.1 experiments
/// run thousands) pay no per-query allocation or clearing. The calculator
/// is therefore NOT thread-safe; use one instance per thread.
class SemanticDistanceCalculator {
 public:
  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  SemanticDistanceCalculator(const wordnet::WordNetDatabase* db,
                             SemanticDistanceWeights weights = {});

  /// \brief Shortest weighted path between two synsets, or kUnreachable if
  ///        it exceeds `cutoff`.
  double SynsetDistance(wordnet::SynsetId a, wordnet::SynsetId b,
                        double cutoff) const;

  /// \brief Term distance: minimum over the terms' synset pairs
  ///        (multi-source, multi-target Dijkstra in one pass).
  double TermDistance(wordnet::TermId a, wordnet::TermId b,
                      double cutoff) const;

  const SemanticDistanceWeights& weights() const { return weights_; }

 private:
  double MultiSourceDistance(const std::vector<wordnet::SynsetId>& sources,
                             const std::vector<wordnet::SynsetId>& targets,
                             double cutoff) const;

  const wordnet::WordNetDatabase* db_;
  SemanticDistanceWeights weights_;

  // Epoch-stamped Dijkstra scratch (see class comment).
  mutable std::vector<double> dist_;
  mutable std::vector<uint32_t> stamp_;
  mutable std::vector<uint32_t> target_stamp_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_SEMANTIC_DISTANCE_H_
