#include "core/risk.h"

#include <algorithm>
#include <cmath>

namespace embellish::core {

RiskEvaluator::RiskEvaluator(const wordnet::WordNetDatabase* db,
                             const SpecificityMap* specificity,
                             const SemanticDistanceCalculator* distance)
    : db_(db), specificity_(specificity), distance_(distance) {}

double RiskEvaluator::AvgIntraBucketSpecificityDifference(
    const BucketOrganization& org) const {
  double total = 0.0;
  size_t counted = 0;
  for (size_t b = 0; b < org.bucket_count(); ++b) {
    const std::vector<wordnet::TermId>& bucket = org.bucket(b);
    if (bucket.size() < 2) continue;
    int lo = specificity_->TermSpecificity(bucket[0]);
    int hi = lo;
    for (wordnet::TermId t : bucket) {
      int s = specificity_->TermSpecificity(t);
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    total += hi - lo;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

DistanceDifferenceStats RiskEvaluator::MeasureDistanceDifference(
    const BucketOrganization& org, size_t trials, Rng* rng) const {
  DistanceDifferenceStats stats;
  if (org.bucket_count() < 2) return stats;

  auto clamped_term_distance = [&](wordnet::TermId a, wordnet::TermId b) {
    double d = distance_->TermDistance(a, b, kDistanceCutoff);
    return std::isinf(d) ? kDistanceCutoff : d;
  };

  double closest_sum = 0.0;
  double farthest_sum = 0.0;
  size_t done = 0;
  size_t attempts = 0;
  const size_t max_attempts = trials * 8 + 64;
  while (done < trials && attempts < max_attempts) {
    ++attempts;
    size_t b1 = static_cast<size_t>(rng->Uniform(org.bucket_count()));
    size_t b2 = static_cast<size_t>(rng->Uniform(org.bucket_count()));
    if (b1 == b2) continue;
    const auto& bucket1 = org.bucket(b1);
    const auto& bucket2 = org.bucket(b2);
    const size_t width = std::min(bucket1.size(), bucket2.size());
    if (width < 2) continue;

    // The "user query": the pair of terms at a uniformly chosen slot.
    const size_t qi = static_cast<size_t>(rng->Uniform(width));
    const double genuine_dist =
        clamped_term_distance(bucket1[qi], bucket2[qi]);

    double closest = std::numeric_limits<double>::infinity();
    double farthest = 0.0;
    for (size_t j = 0; j < width; ++j) {
      if (j == qi) continue;
      const double decoy_dist =
          clamped_term_distance(bucket1[j], bucket2[j]);
      const double diff = std::abs(genuine_dist - decoy_dist);
      closest = std::min(closest, diff);
      farthest = std::max(farthest, diff);
    }
    closest_sum += closest;
    farthest_sum += farthest;
    ++done;
  }

  stats.trials = done;
  if (done > 0) {
    stats.avg_closest = closest_sum / static_cast<double>(done);
    stats.avg_farthest = farthest_sum / static_cast<double>(done);
  }
  return stats;
}

}  // namespace embellish::core
