// Term specificity (Section 3.2).
//
// "We represent the specificity of a term as a non-negative integer,
// determined as the length of the shortest path from the term's synset to a
// root in its hypernym hierarchy." For polysemous terms we take the minimum
// over the term's synsets (its most general sense).
//
// The document-frequency alternative the paper mentions (and [14] correlates
// with the hypernym method) is provided for the ablation bench.

#ifndef EMBELLISH_CORE_SPECIFICITY_H_
#define EMBELLISH_CORE_SPECIFICITY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "corpus/corpus.h"
#include "wordnet/database.h"

namespace embellish::core {

/// \brief Precomputed per-synset and per-term specificity values.
class SpecificityMap {
 public:
  /// \brief Hypernym-path specificity (the paper's corpus-independent
  ///        method): BFS depth from the hierarchy roots.
  static SpecificityMap FromHypernymDepth(const wordnet::WordNetDatabase& db);

  /// \brief Document-frequency specificity: terms are ranked by rising
  ///        df and mapped onto the same 0..max_level scale (rarer = more
  ///        specific). Terms absent from the corpus get the maximum level.
  static SpecificityMap FromDocumentFrequency(
      const wordnet::WordNetDatabase& db, const corpus::Corpus& corpus,
      int max_level = 18);

  /// \brief Specificity of a term (min over its synsets for the hypernym
  ///        method).
  int TermSpecificity(wordnet::TermId term) const {
    return term_specificity_[term];
  }

  /// \brief Specificity of a synset (hypernym method only; -1 otherwise).
  int SynsetSpecificity(wordnet::SynsetId synset) const {
    return synset_specificity_.empty() ? -1 : synset_specificity_[synset];
  }

  /// \brief Largest specificity value present.
  int max_specificity() const { return max_specificity_; }

  /// \brief Histogram over term specificity (index = value) — Figure 2.
  std::vector<size_t> TermHistogram() const;

  size_t term_count() const { return term_specificity_.size(); }

 private:
  std::vector<int> term_specificity_;
  std::vector<int> synset_specificity_;
  int max_specificity_ = 0;
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_SPECIFICITY_H_
