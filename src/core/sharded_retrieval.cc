#include "core/sharded_retrieval.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace embellish::core {

std::vector<storage::StorageLayout> BuildShardLayouts(
    const index::ShardedIndex& sharded, const BucketOrganization& buckets,
    storage::LayoutPolicy policy,
    const storage::DiskModelOptions& disk_options) {
  std::vector<storage::StorageLayout> layouts;
  layouts.reserve(sharded.shard_count());
  for (size_t s = 0; s < sharded.shard_count(); ++s) {
    layouts.push_back(storage::StorageLayout::Build(
        sharded.shard(s), buckets.buckets(), policy, disk_options));
  }
  return layouts;
}

ShardedPrivateRetrievalServer::ShardedPrivateRetrievalServer(
    const index::ShardedIndex* sharded, const BucketOrganization* buckets,
    const std::vector<storage::StorageLayout>* layouts,
    const storage::DiskModelOptions& disk_options,
    const PrivateRetrievalServerOptions& options, ThreadPool* pool,
    size_t max_parallel)
    : pool_(pool), max_parallel_(max_parallel) {
  servers_.reserve(sharded->shard_count());
  for (size_t s = 0; s < sharded->shard_count(); ++s) {
    const storage::StorageLayout* layout =
        layouts != nullptr && s < layouts->size() ? &(*layouts)[s] : nullptr;
    servers_.emplace_back(&sharded->shard(s), buckets, layout, disk_options,
                          options, /*pool=*/nullptr);
  }
}

EncryptedResult MergeShardResults(std::vector<EncryptedResult> per_shard) {
  EncryptedResult merged;
  size_t total = 0;
  for (const EncryptedResult& p : per_shard) total += p.candidates.size();
  merged.candidates.reserve(total);
  for (EncryptedResult& p : per_shard) {
    merged.candidates.insert(merged.candidates.end(),
                             std::make_move_iterator(p.candidates.begin()),
                             std::make_move_iterator(p.candidates.end()));
  }
  // Documents are shard-disjoint, so re-sorting by doc id restores exactly
  // the canonical order the monolithic server emits.
  std::sort(merged.candidates.begin(), merged.candidates.end(),
            [](const EncryptedCandidate& a, const EncryptedCandidate& b) {
              return a.doc < b.doc;
            });
  return merged;
}

Result<EncryptedResult> ShardedPrivateRetrievalServer::Process(
    const EmbellishedQuery& query, const crypto::BenalohPublicKey& pk,
    RetrievalCosts* costs) const {
  const size_t shards = servers_.size();
  std::vector<Result<EncryptedResult>> partial(
      shards, Result<EncryptedResult>(Status::Internal("shard not evaluated")));
  std::vector<RetrievalCosts> shard_costs(shards);

  index::ForEachShard(pool_, shards, [&](size_t s) {
    partial[s] = servers_[s].Process(query, pk, &shard_costs[s]);
  }, max_parallel_);

  std::vector<EncryptedResult> results;
  results.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    EMB_RETURN_NOT_OK(partial[s].status());
    results.push_back(std::move(*partial[s]));
  }
  if (costs != nullptr) {
    for (const RetrievalCosts& c : shard_costs) costs->Add(c);
  }
  return MergeShardResults(std::move(results));
}

ShardedPirRetrievalServer::ShardedPirRetrievalServer(
    const index::ShardedIndex* sharded, const BucketOrganization* buckets,
    const std::vector<storage::StorageLayout>* layouts,
    const storage::DiskModelOptions& disk_options, ThreadPool* pool,
    size_t max_parallel)
    : pool_(pool), max_parallel_(max_parallel) {
  servers_.reserve(sharded->shard_count());
  for (size_t s = 0; s < sharded->shard_count(); ++s) {
    const storage::StorageLayout* layout =
        layouts != nullptr && s < layouts->size() ? &(*layouts)[s] : nullptr;
    servers_.emplace_back(&sharded->shard(s), buckets, layout, disk_options,
                          /*pool=*/nullptr);
  }
}

Result<crypto::PirResponse> ShardedPirRetrievalServer::Answer(
    size_t shard, size_t bucket, const crypto::PirQuery& query,
    RetrievalCosts* costs) const {
  if (shard >= servers_.size()) {
    return Status::OutOfRange(
        StringPrintf("shard %zu out of range (%zu shards)", shard,
                     servers_.size()));
  }
  return servers_[shard].Answer(bucket, query, costs);
}

Result<std::vector<crypto::PirResponse>> ShardedPirRetrievalServer::AnswerBatch(
    size_t shard, const std::vector<PirBatchItem>& items,
    RetrievalCosts* costs, crypto::PirBatchStats* stats) const {
  if (shard >= servers_.size()) {
    return Status::OutOfRange(
        StringPrintf("shard %zu out of range (%zu shards)", shard,
                     servers_.size()));
  }
  return servers_[shard].AnswerBatch(items, costs, stats);
}

Result<std::vector<crypto::PirResponse>> ShardedPirRetrievalServer::AnswerAll(
    size_t bucket, const crypto::PirQuery& query,
    RetrievalCosts* costs) const {
  const size_t shards = servers_.size();
  std::vector<Result<crypto::PirResponse>> partial(
      shards,
      Result<crypto::PirResponse>(Status::Internal("shard not evaluated")));
  std::vector<RetrievalCosts> shard_costs(shards);

  // Each task touches only its own shard's server, so the per-shard lazy
  // matrix caches never race.
  index::ForEachShard(pool_, shards, [&](size_t s) {
    partial[s] = servers_[s].Answer(bucket, query, &shard_costs[s]);
  }, max_parallel_);

  std::vector<crypto::PirResponse> out;
  out.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    EMB_RETURN_NOT_OK(partial[s].status());
    out.push_back(std::move(*partial[s]));
  }
  if (costs != nullptr) {
    for (const RetrievalCosts& c : shard_costs) costs->Add(c);
  }
  return out;
}

Result<std::vector<index::Posting>> RetrieveListSharded(
    const PirRetrievalClient& client, const ShardedPirRetrievalServer& server,
    wordnet::TermId term, Rng* rng, RetrievalCosts* costs) {
  EMB_ASSIGN_OR_RETURN(BucketSlot where, client.buckets().Locate(term));
  const size_t cols = client.buckets().bucket(where.bucket).size();

  // One query serves every shard: the bucket organization (and thus the
  // column space) is shared; only the row counts differ per shard.
  CpuStopwatch cpu;
  EMB_ASSIGN_OR_RETURN(crypto::PirQuery query,
                       client.pir_client().BuildQuery(where.slot, cols, rng));
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
    costs->uplink_bytes += query.WireBytes();
  }

  EMB_ASSIGN_OR_RETURN(std::vector<crypto::PirResponse> responses,
                       server.AnswerAll(where.bucket, query, costs));

  cpu.Restart();
  std::vector<std::vector<index::Posting>> fragments;
  fragments.reserve(responses.size());
  for (const crypto::PirResponse& response : responses) {
    if (costs != nullptr) {
      costs->downlink_bytes +=
          response.WireBytes(client.pir_client().key_bytes());
    }
    EMB_ASSIGN_OR_RETURN(std::vector<bool> bits,
                         client.pir_client().DecodeResponse(response));
    EMB_ASSIGN_OR_RETURN(std::vector<index::Posting> fragment,
                         PostingsFromColumnBits(bits));
    fragments.push_back(std::move(fragment));
  }
  std::vector<index::Posting> merged = index::MergeShardPostings(fragments);
  if (costs != nullptr) {
    costs->user_cpu_ms += cpu.ElapsedMillis();
  }
  return merged;
}

Result<std::vector<index::ScoredDoc>> RunQuerySharded(
    const PirRetrievalClient& client, const ShardedPirRetrievalServer& server,
    const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
    RetrievalCosts* costs) {
  return RankRetrievedLists(
      genuine_terms, k, costs, [&](wordnet::TermId term) {
        return RetrieveListSharded(client, server, term, rng, costs);
      });
}

}  // namespace embellish::core
