#include "core/bucketizer.h"

#include <algorithm>

#include "common/strings.h"

namespace embellish::core {

Status BucketizerOptions::Validate() const {
  if (bucket_size < 1) {
    return Status::InvalidArgument("bucket_size must be >= 1");
  }
  if (segment_size < 1) {
    return Status::InvalidArgument("segment_size must be >= 1");
  }
  return Status::OK();
}

Result<BucketOrganization> FormBuckets(const SequencerResult& sequences,
                                       const SpecificityMap& specificity,
                                       const BucketizerOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());

  // Line 1: concatenate the input sequences into one long term sequence.
  std::vector<wordnet::TermId> seq;
  seq.reserve(sequences.TotalTerms());
  for (const auto& s : sequences.sequences) {
    seq.insert(seq.end(), s.begin(), s.end());
  }
  const size_t n = seq.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least 2 terms to bucketize");
  }
  const size_t bktsz = options.bucket_size;
  if (bktsz > n / 2) {
    return Status::InvalidArgument(StringPrintf(
        "bucket_size %zu violates BktSz <= N/2 (N = %zu)", bktsz, n));
  }
  // Paper constraint 1 <= SegSz <= N/BktSz; larger requests are clamped to
  // the maximum (how the Figure 6 experiment asks for "maximal SegSz").
  const size_t segsz = std::min(options.segment_size, n / bktsz);

  // Lines 3-4: split into #Seg = round(N/SegSz) segments. When SegSz does
  // not divide N, the remainder is spread so segment lengths differ by at
  // most one — a ceil-split would orphan a tiny tail segment whose buckets
  // degenerate to width < BktSz.
  const size_t num_segments = std::max<size_t>(
      1, (n + segsz / 2) / segsz);
  const size_t base_len = n / num_segments;
  const size_t extra = n % num_segments;
  std::vector<std::pair<size_t, size_t>> segment_bounds;  // [begin, end)
  segment_bounds.reserve(num_segments);
  size_t cursor = 0;
  for (size_t s = 0; s < num_segments; ++s) {
    size_t len = base_len + (s < extra ? 1 : 0);
    segment_bounds.emplace_back(cursor, cursor + len);
    cursor += len;
  }

  // Line 5: sort terms within each segment by decreasing specificity.
  // Stability preserves the sequence order among equal-specificity terms,
  // which keeps synsets clustered (the Section 5.1 observation).
  for (auto [begin, end] : segment_bounds) {
    auto cmp = [&](wordnet::TermId a, wordnet::TermId b) {
      return specificity.TermSpecificity(a) > specificity.TermSpecificity(b);
    };
    if (options.stable_specificity_sort) {
      std::stable_sort(seq.begin() + static_cast<ptrdiff_t>(begin),
                       seq.begin() + static_cast<ptrdiff_t>(end), cmp);
    } else {
      // Ablation: destroy the tie order deterministically by pre-reversing,
      // then unstable-sorting.
      std::reverse(seq.begin() + static_cast<ptrdiff_t>(begin),
                   seq.begin() + static_cast<ptrdiff_t>(end));
      std::sort(seq.begin() + static_cast<ptrdiff_t>(begin),
                seq.begin() + static_cast<ptrdiff_t>(end), cmp);
    }
  }

  // Lines 6-13: each group i draws one term per position from BktSz
  // segments spaced `groups` apart: segments {i, G+i, 2G+i, ...}.
  const size_t groups = (num_segments + bktsz - 1) / bktsz;  // G
  std::vector<std::vector<wordnet::TermId>> buckets;
  buckets.reserve(n / bktsz + groups);
  for (size_t i = 0; i < groups; ++i) {
    std::vector<size_t> active;  // segment indices
    for (size_t j = 0; j < bktsz; ++j) {
      size_t s = j * groups + i;
      if (s < num_segments) active.push_back(s);
    }
    size_t max_len = 0;
    for (size_t s : active) {
      max_len = std::max(max_len,
                         segment_bounds[s].second - segment_bounds[s].first);
    }
    for (size_t pos = 0; pos < max_len; ++pos) {
      std::vector<wordnet::TermId> bucket;
      bucket.reserve(active.size());
      for (size_t s : active) {
        size_t begin = segment_bounds[s].first;
        size_t end = segment_bounds[s].second;
        if (begin + pos < end) bucket.push_back(seq[begin + pos]);
      }
      if (!bucket.empty()) buckets.push_back(std::move(bucket));
    }
  }

  return BucketOrganization::Create(std::move(buckets));
}

}  // namespace embellish::core
