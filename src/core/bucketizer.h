// Algorithm 2 (Section 3.4): form buckets from the sequenced dictionary.
//
// The concatenated term sequence is split into segments of SegSz terms;
// within each segment terms are sorted by decreasing specificity with a
// STABLE sort (line 5 preserves the relative order of specificity ties —
// Section 5.1 observes this is what keeps whole synsets clustered and the
// distance-difference metric flat across SegSz). Buckets then take one term
// from each of BktSz segments spaced N/(BktSz*SegSz) apart, so co-bucket
// terms are far apart in the sequence (semantically diverse) yet similar in
// specificity.

#ifndef EMBELLISH_CORE_BUCKETIZER_H_
#define EMBELLISH_CORE_BUCKETIZER_H_

#include "common/status.h"
#include "core/bucket_organization.h"
#include "core/sequencer.h"
#include "core/specificity.h"

namespace embellish::core {

/// \brief Algorithm 2 parameters.
struct BucketizerOptions {
  /// BktSz: terms per bucket (1 <= BktSz <= N/2). The search engine fetches
  /// whole buckets, so this is the decoy multiplier.
  size_t bucket_size = 4;

  /// SegSz: terms per segment (1 <= SegSz <= N/BktSz). Larger segments give
  /// more freedom to equalize specificity within buckets.
  size_t segment_size = 512;

  /// When false, the in-segment specificity sort is unstable (an ablation
  /// knob; the paper's algorithm is stable).
  bool stable_specificity_sort = true;

  Status Validate() const;
};

/// \brief Runs Algorithm 2 over the sequenced dictionary.
///
/// When the sequence length N is not a multiple of bucket_size*segment_size,
/// the final (partial) stripe is bucketized the same way with proportionally
/// shorter segments, so every term still lands in exactly one bucket and all
/// buckets have at most bucket_size terms.
Result<BucketOrganization> FormBuckets(const SequencerResult& sequences,
                                       const SpecificityMap& specificity,
                                       const BucketizerOptions& options);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_BUCKETIZER_H_
