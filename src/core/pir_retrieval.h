// The "Alternate Retrieval Method" of Section 4: Kushilevitz-Ostrovsky PIR
// over buckets, benchmarked against PR in Section 5.2.
//
// Each bucket is treated as a private database matrix whose columns are the
// bucket's inverted lists, padded to a common length; the i-th row stores
// the i-th bit of the lists. One protocol execution retrieves one column
// (one term's list), so a query with g genuine terms performs g executions.
// The client then scores documents locally from the retrieved lists.
//
// Column wire layout inside the matrix: a 4-byte big-endian list length (in
// bytes) followed by the serialized postings, zero-padded to the bucket's
// maximum. The length prefix lets the client strip padding unambiguously.

#ifndef EMBELLISH_CORE_PIR_RETRIEVAL_H_
#define EMBELLISH_CORE_PIR_RETRIEVAL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/bucket_organization.h"
#include "core/private_retrieval.h"
#include "crypto/pir.h"
#include "index/inverted_index.h"
#include "index/topk.h"
#include "storage/block_device.h"
#include "storage/layout.h"

namespace embellish::core {

/// \brief One query of a PIR batch: the bucket it addresses and the decoded
///        query it carries (not owned; must outlive the call).
struct PirBatchItem {
  size_t bucket = 0;
  const crypto::PirQuery* query = nullptr;
};

/// \brief Search-engine side: answers per-bucket PIR executions.
///
/// Answer and AnswerBatch are safe to call concurrently: bucket matrices are
/// materialized lazily under an internal mutex (held only while a matrix is
/// built — concurrent queries against already-built buckets proceed without
/// serialization), matrices are immutable once built, and the protocol
/// evaluation fans out over `pool` when supplied.
class PirRetrievalServer {
 public:
  /// \brief `pool` may be null (serial evaluation) and must outlive the
  ///        server; it parallelizes each query's row products.
  PirRetrievalServer(const index::InvertedIndex* index,
                     const BucketOrganization* buckets,
                     const storage::StorageLayout* layout,
                     const storage::DiskModelOptions& disk_options = {},
                     ThreadPool* pool = nullptr);

  /// \brief Runs one PIR execution against bucket `bucket`. Charges one
  ///        bucket fetch of I/O plus the protocol CPU to `costs`.
  Result<crypto::PirResponse> Answer(size_t bucket,
                                     const crypto::PirQuery& query,
                                     RetrievalCosts* costs) const;

  /// \brief Answers a batch of PIR executions in shared sweeps: items are
  ///        grouped by bucket and each bucket's matrix is swept once for all
  ///        of its queries (crypto::PirServer::AnswerBatch), with one bucket
  ///        fetch of I/O charged per group. Response i corresponds to
  ///        items[i] and is bit-identical to Answer(items[i]). Counters are
  ///        added into `stats` when non-null.
  Result<std::vector<crypto::PirResponse>> AnswerBatch(
      const std::vector<PirBatchItem>& items, RetrievalCosts* costs,
      crypto::PirBatchStats* stats = nullptr) const;

  /// \brief The (lazily built) matrix for a bucket. Thread-safe; the
  ///        returned matrix is immutable and lives as long as the server.
  Result<const crypto::PirDatabase*> BucketMatrix(size_t bucket) const;

 private:
  const index::InvertedIndex* index_;
  const BucketOrganization* buckets_;
  const storage::StorageLayout* layout_;
  storage::DiskModelOptions disk_options_;
  ThreadPool* pool_;  // not owned; null => serial
  // Guards matrix_cache_ (lazy materialization); matrices themselves are
  // immutable after insertion and entries are never evicted, so pointers
  // handed out remain valid without the lock. Heap-allocated so the server
  // stays movable (the sharded engine keeps one server per shard in a
  // vector).
  mutable std::unique_ptr<std::mutex> matrix_mu_ =
      std::make_unique<std::mutex>();
  mutable std::unordered_map<size_t, std::unique_ptr<crypto::PirDatabase>>
      matrix_cache_;
};

/// \brief User side: builds queries, decodes responses, scores locally.
class PirRetrievalClient {
 public:
  /// \brief Generates the client's QR trapdoor key (n = p1*p2).
  static Result<PirRetrievalClient> Create(const BucketOrganization* buckets,
                                           size_t key_bits, Rng* rng);

  /// \brief End-to-end private query: one PIR execution per distinct
  ///        genuine term, local scoring, top-k ranking.
  Result<std::vector<index::ScoredDoc>> RunQuery(
      const PirRetrievalServer& server,
      const std::vector<wordnet::TermId>& genuine_terms, size_t k, Rng* rng,
      RetrievalCosts* costs) const;

  /// \brief Retrieves a single term's inverted list privately.
  Result<std::vector<index::Posting>> RetrieveList(
      const PirRetrievalServer& server, wordnet::TermId term, Rng* rng,
      RetrievalCosts* costs) const;

  /// \brief The underlying KO-PIR client (the sharded retrieval path reuses
  ///        its query builder and response decoder per shard).
  const crypto::PirClient& pir_client() const { return pir_client_; }

  const BucketOrganization& buckets() const { return *buckets_; }

 private:
  PirRetrievalClient(const BucketOrganization* buckets,
                     crypto::PirClient pir_client);

  const BucketOrganization* buckets_;
  crypto::PirClient pir_client_;
};

/// \brief Parses one decoded PIR column (the bit vector a protocol execution
///        retrieves) into postings: [u32 BE length][serialized list][zero
///        padding]. Corruption on malformed layout. Shared by the monolithic
///        and sharded retrieval paths.
Result<std::vector<index::Posting>> PostingsFromColumnBits(
    const std::vector<bool>& bits);

/// \brief Client-side scoring shared by the monolithic and sharded PIR
///        query paths: deduplicates `genuine_terms`, retrieves each term's
///        list via `retrieve`, accumulates impacts per document, and
///        returns the canonical top `k`. Scoring CPU is charged to `costs`;
///        `retrieve` charges its own protocol costs.
Result<std::vector<index::ScoredDoc>> RankRetrievedLists(
    const std::vector<wordnet::TermId>& genuine_terms, size_t k,
    RetrievalCosts* costs,
    const std::function<Result<std::vector<index::Posting>>(wordnet::TermId)>&
        retrieve);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_PIR_RETRIEVAL_H_
