// Byte-level wire formats for the PR protocol messages.
//
// The §5.2 traffic metric counts exactly these encodings. Layouts (all
// integers big-endian):
//
//   EmbellishedQuery:  [u32 entry_count] then per entry
//                      [u32 term_id][ciphertext: key_bytes]
//   EncryptedResult:   [u32 candidate_count] then per candidate
//                      [u32 doc_id][ciphertext: key_bytes]
//
// Decoding validates counts, sizes and ciphertext ranges and returns
// Status::Corruption on malformed input — exercised by the failure
// injection tests.

#ifndef EMBELLISH_CORE_WIRE_FORMAT_H_
#define EMBELLISH_CORE_WIRE_FORMAT_H_

#include <cstdint>
#include <vector>

#include "core/embellisher.h"
#include "core/private_retrieval.h"

namespace embellish::core {

/// \brief Serializes an embellished query for the uplink.
std::vector<uint8_t> EncodeQuery(const EmbellishedQuery& query,
                                 const crypto::BenalohPublicKey& pk);

/// \brief Parses and validates an embellished query.
Result<EmbellishedQuery> DecodeQuery(const std::vector<uint8_t>& bytes,
                                     const crypto::BenalohPublicKey& pk);

/// \brief Serializes an encrypted result for the downlink.
std::vector<uint8_t> EncodeResult(const EncryptedResult& result,
                                  const crypto::BenalohPublicKey& pk);

/// \brief Parses and validates an encrypted result.
Result<EncryptedResult> DecodeResult(const std::vector<uint8_t>& bytes,
                                     const crypto::BenalohPublicKey& pk);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_WIRE_FORMAT_H_
