// The Bayesian adversary of Section 3.1 (Equations 1-2), implemented exactly
// on small instances.
//
// Observing buckets B_i1..B_im for each query i, the adversary's candidate
// space is Q_i = B_i1 x ... x B_im; candidate sequences are S = Q_1 x ... x
// Q_n. With prior alpha(s'), the posterior is
//     beta(s') = alpha(s') / sum_{s*} alpha(s*)                     (Eq. 1)
// and the privacy risk of the organization is
//     risk = sum_{s'} beta(s') * sim(s', s)                         (Eq. 2)
// where s is the genuine sequence. The paper notes exact computation is
// impractical in general (S is exponential); this module enumerates it for
// the small instances the tests and the privacy_audit example use, with a
// hard cap on |S|.
//
// sim(s', s) is instantiated as the mean per-position query similarity,
// where query similarity is the mean pairwise semantic proximity
// 1 / (1 + dist) between aligned terms — a monotone proxy for Formula 3
// that stays well-defined on term-id sequences.

#ifndef EMBELLISH_CORE_ADVERSARY_H_
#define EMBELLISH_CORE_ADVERSARY_H_

#include <vector>

#include "common/status.h"
#include "core/bucket_organization.h"
#include "core/semantic_distance.h"

namespace embellish::core {

/// \brief Result of the exact risk computation.
struct AdversaryRisk {
  /// Eq. 2 value in [0, 1]: expected similarity of the adversary's pick to
  /// the genuine sequence.
  double risk = 0.0;

  /// Posterior mass beta(s) on the genuine sequence itself.
  double posterior_on_truth = 0.0;

  /// Number of candidate sequences enumerated (|S|).
  uint64_t candidate_count = 0;
};

/// \brief Exact Eq. 1-2 computation under a uniform prior.
///
/// `genuine_sequence[i]` is query i's genuine terms (each must be bucketed).
/// Fails with InvalidArgument when |S| would exceed `max_candidates`.
Result<AdversaryRisk> ComputeAdversaryRisk(
    const BucketOrganization& org, const SemanticDistanceCalculator& distance,
    const std::vector<std::vector<wordnet::TermId>>& genuine_sequence,
    uint64_t max_candidates = 2000000);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_ADVERSARY_H_
