// Query expansion via corpus co-occurrence (local/global analysis in the
// style of Xu & Croft [28] and Qiu & Frei [23]).
//
// The paper motivates decoy *injection* over query substitution partly
// because expanded queries run to dozens of terms — "query expansion can
// produce even longer queries" (§1, §2.1) — and Figure 8 measures exactly
// that regime. This module supplies the expansion so examples and benches
// can generate realistic long queries instead of padding with random terms.

#ifndef EMBELLISH_CORE_QUERY_EXPANSION_H_
#define EMBELLISH_CORE_QUERY_EXPANSION_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "wordnet/relation_extraction.h"

namespace embellish::core {

/// \brief Expansion parameters.
struct QueryExpansionOptions {
  /// How many related terms each query term contributes.
  size_t terms_per_seed = 3;

  /// Associations weaker than this are not used.
  double min_strength = 0.10;

  Status Validate() const;
};

/// \brief Expands queries with the strongest associated terms.
class QueryExpander {
 public:
  /// \brief Builds the expansion table from mined relations.
  static Result<QueryExpander> Create(
      const std::vector<wordnet::ExtractedRelation>& relations,
      const QueryExpansionOptions& options = {});

  /// \brief Returns the original terms followed by expansion terms, all
  ///        distinct, original order preserved.
  std::vector<wordnet::TermId> Expand(
      const std::vector<wordnet::TermId>& query) const;

  /// \brief Number of terms with at least one expansion candidate.
  size_t table_size() const { return table_.size(); }

 private:
  QueryExpander() = default;

  QueryExpansionOptions options_;
  // term -> related terms, strongest first.
  std::unordered_map<wordnet::TermId, std::vector<wordnet::TermId>> table_;
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_QUERY_EXPANSION_H_
