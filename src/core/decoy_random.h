// The "Random" baseline of Section 5.1: decoys drawn uniformly from the
// dictionary, i.e. a bucket organization formed by randomly permuting the
// dictionary and chopping it into buckets.

#ifndef EMBELLISH_CORE_DECOY_RANDOM_H_
#define EMBELLISH_CORE_DECOY_RANDOM_H_

#include "common/rng.h"
#include "common/status.h"
#include "core/bucket_organization.h"

namespace embellish::core {

/// \brief Builds a random bucket organization over `terms` with buckets of
///        `bucket_size` (the final bucket may be smaller).
Result<BucketOrganization> RandomBucketOrganization(
    const std::vector<wordnet::TermId>& terms, size_t bucket_size, Rng* rng);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_DECOY_RANDOM_H_
