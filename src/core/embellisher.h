// Algorithm 3 (Section 4): mask the genuine terms in a search query.
//
// For every genuine term, all other members of its host bucket are injected
// as decoys. Each term t_j in the embellished query carries a Benaloh
// ciphertext E(u_j), u_j = 1 for genuine terms and 0 for decoys. Finally the
// entries are permuted uniformly at random, so the position of a term leaks
// nothing about its provenance.

#ifndef EMBELLISH_CORE_EMBELLISHER_H_
#define EMBELLISH_CORE_EMBELLISHER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/bucket_organization.h"
#include "crypto/benaloh.h"

namespace embellish::core {

/// \brief One entry of the embellished query: a term with its encrypted
///        genuineness indicator.
struct EmbellishedTerm {
  wordnet::TermId term;
  crypto::BenalohCiphertext indicator;  ///< E(1) genuine, E(0) decoy
};

/// \brief The embellished query q sent to the search engine.
struct EmbellishedQuery {
  std::vector<EmbellishedTerm> entries;

  /// \brief Uplink wire size: per entry a 4-byte term id plus one
  ///        ciphertext of the public key's width.
  size_t WireBytes(const crypto::BenalohPublicKey& pk) const {
    return entries.size() * (4 + pk.CiphertextBytes());
  }
};

/// \brief Client-side query masking (Algorithm 3).
class QueryEmbellisher {
 public:
  /// \brief All pointers must outlive the embellisher. `pool` may be null
  ///        (serial); it parallelizes the per-entry indicator encryptions.
  QueryEmbellisher(const BucketOrganization* buckets,
                   const crypto::BenalohPublicKey* public_key,
                   ThreadPool* pool = nullptr);

  /// \brief Produces the embellished query for `genuine_terms`.
  ///
  /// Duplicated genuine terms are collapsed. Fails with NotFound if a term
  /// is not covered by the bucket organization, and with InvalidArgument on
  /// an empty query.
  Result<EmbellishedQuery> Embellish(
      const std::vector<wordnet::TermId>& genuine_terms, Rng* rng) const;

  const BucketOrganization& buckets() const { return *buckets_; }

 private:
  const BucketOrganization* buckets_;
  const crypto::BenalohPublicKey* public_key_;
  ThreadPool* pool_;  // not owned; null => serial
};

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_EMBELLISHER_H_
