// Persistence for bucket organizations.
//
// The bucket organization is deployment state shared between the client
// software and the search engine (§4 requires both sides to agree on the
// term -> bucket mapping). This module gives it a versioned text format so
// it can be generated offline, audited, finetuned manually ("for sensitive
// applications ... the buckets could be finetuned manually", §3), and
// shipped.
//
// Format:
//   embellish-buckets 1
//   buckets <count>
//   B <term-id> [<term-id> ...]     x count

#ifndef EMBELLISH_CORE_BUCKET_IO_H_
#define EMBELLISH_CORE_BUCKET_IO_H_

#include <string>

#include "common/status.h"
#include "core/bucket_organization.h"

namespace embellish::core {

/// \brief Serializes the organization to the text format.
std::string SerializeBuckets(const BucketOrganization& org);

/// \brief Parses and validates an organization from the text format.
Result<BucketOrganization> ParseBuckets(const std::string& text);

/// \brief Writes the text format to a file.
Status SaveBucketsToFile(const BucketOrganization& org,
                         const std::string& path);

/// \brief Reads an organization from a file.
Result<BucketOrganization> LoadBucketsFromFile(const std::string& path);

}  // namespace embellish::core

#endif  // EMBELLISH_CORE_BUCKET_IO_H_
