#include "core/grouping_adversary.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace embellish::core {

namespace {

// Coherence of a term combination: mean pairwise proximity 1/(1+d).
// Higher = the terms look more like one topic.
double Coherence(const SemanticDistanceCalculator& distance,
                 const std::vector<wordnet::TermId>& terms, double cutoff) {
  if (terms.size() < 2) return 1.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      double d = distance.TermDistance(terms[i], terms[j], cutoff);
      if (std::isinf(d)) d = cutoff;
      total += 1.0 / (1.0 + d);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace

Result<MapAttackResult> RunMapCoherenceAttack(
    const BucketOrganization& org, const SemanticDistanceCalculator& distance,
    const std::vector<std::vector<wordnet::TermId>>& queries,
    const MapAttackOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("no queries supplied");
  }

  MapAttackResult result;
  double chance_sum = 0.0;
  for (const std::vector<wordnet::TermId>& genuine : queries) {
    if (genuine.empty()) {
      return Status::InvalidArgument("empty query in workload");
    }
    // The adversary's recovered groups: the distinct host buckets, in the
    // order first touched by the query.
    std::vector<size_t> hosts;
    for (wordnet::TermId t : genuine) {
      EMB_ASSIGN_OR_RETURN(BucketSlot where, org.Locate(t));
      if (std::find(hosts.begin(), hosts.end(), where.bucket) ==
          hosts.end()) {
        hosts.push_back(where.bucket);
      }
    }
    // One genuine member per group for the ground truth. (When two genuine
    // terms share a bucket, the MAP rule can only pick one member per
    // group; we use the first as truth, which only *helps* the adversary.)
    std::vector<wordnet::TermId> truth;
    for (size_t host : hosts) {
      for (wordnet::TermId t : genuine) {
        if (org.Locate(t)->bucket == host) {
          truth.push_back(t);
          break;
        }
      }
    }

    uint64_t combinations = 1;
    for (size_t host : hosts) {
      uint64_t width = org.bucket(host).size();
      if (combinations > options.max_combinations / width) {
        return Status::InvalidArgument(StringPrintf(
            "combination space exceeds cap %llu",
            static_cast<unsigned long long>(options.max_combinations)));
      }
      combinations *= width;
    }
    chance_sum += 1.0 / static_cast<double>(combinations);

    // Enumerate one-member-per-group combinations with a mixed-radix
    // counter; track the maximal coherence and whether the truth attains
    // it.
    std::vector<size_t> digit(hosts.size(), 0);
    double best = -1.0;
    uint64_t best_count = 0;
    bool truth_is_best = false;
    const double epsilon = 1e-12;
    while (true) {
      std::vector<wordnet::TermId> candidate(hosts.size());
      for (size_t g = 0; g < hosts.size(); ++g) {
        candidate[g] = org.bucket(hosts[g])[digit[g]];
      }
      double score =
          Coherence(distance, candidate, options.distance_cutoff);
      if (score > best + epsilon) {
        best = score;
        best_count = 1;
        truth_is_best = candidate == truth;
      } else if (score >= best - epsilon) {
        ++best_count;
        if (candidate == truth) truth_is_best = true;
      }
      size_t g = 0;
      while (g < hosts.size()) {
        if (++digit[g] < org.bucket(hosts[g]).size()) break;
        digit[g] = 0;
        ++g;
      }
      if (g == hosts.size()) break;
    }
    if (truth_is_best && best_count > 0) {
      result.expected_hits += 1.0 / static_cast<double>(best_count);
    }
    ++result.queries;
  }

  result.hit_rate =
      result.expected_hits / static_cast<double>(result.queries);
  result.chance_rate = chance_sum / static_cast<double>(result.queries);
  return result;
}

}  // namespace embellish::core
