#include "core/decoy_random.h"

namespace embellish::core {

Result<BucketOrganization> RandomBucketOrganization(
    const std::vector<wordnet::TermId>& terms, size_t bucket_size, Rng* rng) {
  if (bucket_size < 1) {
    return Status::InvalidArgument("bucket_size must be >= 1");
  }
  if (terms.empty()) {
    return Status::InvalidArgument("no terms supplied");
  }
  std::vector<wordnet::TermId> shuffled = terms;
  rng->Shuffle(&shuffled);
  std::vector<std::vector<wordnet::TermId>> buckets;
  buckets.reserve(shuffled.size() / bucket_size + 1);
  for (size_t i = 0; i < shuffled.size(); i += bucket_size) {
    size_t end = std::min(shuffled.size(), i + bucket_size);
    buckets.emplace_back(shuffled.begin() + static_cast<ptrdiff_t>(i),
                         shuffled.begin() + static_cast<ptrdiff_t>(end));
  }
  return BucketOrganization::Create(std::move(buckets));
}

}  // namespace embellish::core
