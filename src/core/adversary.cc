#include "core/adversary.h"

#include <cmath>

#include "common/strings.h"

namespace embellish::core {

namespace {

constexpr double kCutoff = 32.0;

// Mean pairwise proximity between two aligned term tuples.
double QuerySimilarity(const SemanticDistanceCalculator& distance,
                       const std::vector<wordnet::TermId>& a,
                       const std::vector<wordnet::TermId>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) {
      total += 1.0;
      continue;
    }
    double d = distance.TermDistance(a[i], b[i], kCutoff);
    if (std::isinf(d)) d = kCutoff;
    total += 1.0 / (1.0 + d);
  }
  return a.empty() ? 0.0 : total / static_cast<double>(a.size());
}

}  // namespace

Result<AdversaryRisk> ComputeAdversaryRisk(
    const BucketOrganization& org, const SemanticDistanceCalculator& distance,
    const std::vector<std::vector<wordnet::TermId>>& genuine_sequence,
    uint64_t max_candidates) {
  if (genuine_sequence.empty()) {
    return Status::InvalidArgument("empty query sequence");
  }

  // Resolve each genuine term's bucket; Q_i = product of the host buckets.
  // Count |S| first so we fail fast on oversized instances.
  std::vector<std::vector<const std::vector<wordnet::TermId>*>> bucket_seq;
  uint64_t candidates = 1;
  for (const auto& query : genuine_sequence) {
    if (query.empty()) {
      return Status::InvalidArgument("empty query in sequence");
    }
    std::vector<const std::vector<wordnet::TermId>*> host_buckets;
    for (wordnet::TermId t : query) {
      EMB_ASSIGN_OR_RETURN(BucketSlot where, org.Locate(t));
      host_buckets.push_back(&org.bucket(where.bucket));
      uint64_t width = org.bucket(where.bucket).size();
      if (candidates > max_candidates / width) {
        return Status::InvalidArgument(StringPrintf(
            "candidate space exceeds cap %llu",
            static_cast<unsigned long long>(max_candidates)));
      }
      candidates *= width;
    }
    bucket_seq.push_back(std::move(host_buckets));
  }

  // Per-query candidate tuples and their similarity to the genuine query.
  // risk factorizes: with a uniform prior, beta is uniform on S, and
  // sim(s', s) averages per-query similarities, so
  //   risk = (1/n) * sum_i mean_{q' in Q_i} sim_q(q', q_i).
  // We still track the posterior on the exact genuine sequence.
  double risk_total = 0.0;
  double truth_mass = 1.0;
  for (size_t i = 0; i < genuine_sequence.size(); ++i) {
    const auto& hosts = bucket_seq[i];
    const auto& genuine = genuine_sequence[i];
    const size_t m = hosts.size();

    // Enumerate Q_i with a mixed-radix counter.
    std::vector<size_t> digit(m, 0);
    double sim_sum = 0.0;
    uint64_t count = 0;
    while (true) {
      std::vector<wordnet::TermId> candidate(m);
      for (size_t j = 0; j < m; ++j) candidate[j] = (*hosts[j])[digit[j]];
      sim_sum += QuerySimilarity(distance, candidate, genuine);
      ++count;
      size_t j = 0;
      while (j < m) {
        if (++digit[j] < hosts[j]->size()) break;
        digit[j] = 0;
        ++j;
      }
      if (j == m) break;
    }
    risk_total += sim_sum / static_cast<double>(count);
    truth_mass /= static_cast<double>(count);
  }

  AdversaryRisk out;
  out.risk = risk_total / static_cast<double>(genuine_sequence.size());
  out.posterior_on_truth = truth_mass;
  out.candidate_count = candidates;
  return out;
}

}  // namespace embellish::core
