#include "core/query_expansion.h"

#include <algorithm>
#include <unordered_set>

namespace embellish::core {

Status QueryExpansionOptions::Validate() const {
  if (terms_per_seed < 1) {
    return Status::InvalidArgument("terms_per_seed must be >= 1");
  }
  if (min_strength < 0.0 || min_strength >= 1.0) {
    return Status::InvalidArgument("min_strength out of [0, 1)");
  }
  return Status::OK();
}

Result<QueryExpander> QueryExpander::Create(
    const std::vector<wordnet::ExtractedRelation>& relations,
    const QueryExpansionOptions& options) {
  EMB_RETURN_NOT_OK(options.Validate());
  QueryExpander expander;
  expander.options_ = options;

  // Collect (strength, neighbor) per endpoint, then keep the strongest
  // terms_per_seed of each.
  std::unordered_map<wordnet::TermId,
                     std::vector<std::pair<double, wordnet::TermId>>>
      weighted;
  for (const wordnet::ExtractedRelation& rel : relations) {
    if (rel.strength < options.min_strength) continue;
    weighted[rel.a].emplace_back(rel.strength, rel.b);
    weighted[rel.b].emplace_back(rel.strength, rel.a);
  }
  for (auto& [term, list] : weighted) {
    std::sort(list.begin(), list.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first > y.first;
      return x.second < y.second;
    });
    if (list.size() > options.terms_per_seed) {
      list.resize(options.terms_per_seed);
    }
    std::vector<wordnet::TermId> terms;
    terms.reserve(list.size());
    for (const auto& [strength, t] : list) terms.push_back(t);
    expander.table_.emplace(term, std::move(terms));
  }
  return expander;
}

std::vector<wordnet::TermId> QueryExpander::Expand(
    const std::vector<wordnet::TermId>& query) const {
  std::vector<wordnet::TermId> out;
  std::unordered_set<wordnet::TermId> seen;
  for (wordnet::TermId t : query) {
    if (seen.insert(t).second) out.push_back(t);
  }
  for (wordnet::TermId t : query) {
    auto it = table_.find(t);
    if (it == table_.end()) continue;
    for (wordnet::TermId related : it->second) {
      if (seen.insert(related).second) out.push_back(related);
    }
  }
  return out;
}

}  // namespace embellish::core
