// Montgomery multiplication context for a fixed odd modulus.
//
// The KO-PIR server multiplies thousands of KeyLen-bit residues per query
// (Appendix A.1), and Benaloh encryption performs two modexps per term
// (Algorithm 3); both sit on this context. Implementation is the standard
// CIOS (coarsely integrated operand scanning) loop over 64-bit limbs.

#ifndef EMBELLISH_BIGNUM_MONTGOMERY_H_
#define EMBELLISH_BIGNUM_MONTGOMERY_H_

#include <vector>

#include "bignum/bigint.h"
#include "common/status.h"

namespace embellish::bignum {

/// \brief Precomputed state for fast multiplication modulo a fixed odd n.
class MontgomeryContext {
 public:
  /// \brief Builds a context; `modulus` must be odd and > 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// \brief a * b mod n for a, b already reduced mod n (not in Montgomery
  ///        form; conversion happens internally). Convenience wrapper.
  BigInt Mul(const BigInt& a, const BigInt& b) const;

  /// \brief a^e mod n.
  BigInt ModExp(const BigInt& a, const BigInt& e) const;

  // -- Lower-level API for batched work (PIR row products) --

  /// \brief Converts into Montgomery form: aR mod n.
  std::vector<uint64_t> ToMontgomery(const BigInt& a) const;

  /// \brief Converts out of Montgomery form.
  BigInt FromMontgomery(const std::vector<uint64_t>& a) const;

  /// \brief Montgomery product of two Montgomery-form values (CIOS).
  std::vector<uint64_t> MontMul(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) const;

  /// \brief Montgomery form of 1 (i.e. R mod n) — the product identity.
  const std::vector<uint64_t>& One() const { return r_mod_n_; }

  /// \brief Limb width k of the modulus; all Montgomery vectors have size k.
  size_t limb_count() const { return k_; }

 private:
  MontgomeryContext() = default;

  BigInt modulus_;
  std::vector<uint64_t> n_limbs_;
  std::vector<uint64_t> r_mod_n_;   // R mod n, Montgomery form of 1
  BigInt r2_mod_n_;                 // R^2 mod n, for ToMontgomery
  uint64_t n_prime_ = 0;            // -n^{-1} mod 2^64
  size_t k_ = 0;
};

}  // namespace embellish::bignum

#endif  // EMBELLISH_BIGNUM_MONTGOMERY_H_
