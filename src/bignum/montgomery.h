// Montgomery multiplication context for a fixed odd modulus.
//
// The KO-PIR server multiplies thousands of KeyLen-bit residues per query
// (Appendix A.1), and Benaloh encryption performs two modexps per term
// (Algorithm 3); both sit on this context. Implementation is the standard
// CIOS (coarsely integrated operand scanning) loop over 64-bit limbs.
//
// Two API tiers are provided:
//  - Value APIs (Mul, ModExp, MontMul on vectors) — convenient, allocate.
//  - Scratch APIs (MontMulInto, ModExpInto, FromMontgomeryInto) — all
//    intermediates live in a caller-owned Scratch, so the steady state
//    performs zero heap allocations per operation. The PIR row loop and the
//    batched Benaloh/Paillier encrypt paths run exclusively on this tier,
//    with one Scratch per worker thread.

#ifndef EMBELLISH_BIGNUM_MONTGOMERY_H_
#define EMBELLISH_BIGNUM_MONTGOMERY_H_

#include <vector>

#include "bignum/bigint.h"
#include "common/status.h"

namespace embellish::bignum {

/// \brief Precomputed state for fast multiplication modulo a fixed odd n.
class MontgomeryContext {
 public:
  /// \brief Window width of the sliding-window exponentiation.
  static constexpr int kExpWindowBits = 4;
  /// \brief Odd-power table entries: a^1, a^3, ..., a^(2^w - 1).
  static constexpr size_t kExpWindowTableSize = 1u << (kExpWindowBits - 1);

  /// \brief Reusable workspace for the allocation-free kernels.
  ///
  /// Holds the CIOS accumulator and (lazily, on first ModExpInto) the
  /// windowed-exponentiation tables. Not thread-safe: use one Scratch per
  /// thread. A Scratch is bound to the limb width of the context it was
  /// created for and may be reused across contexts of the same width.
  class Scratch {
   public:
    explicit Scratch(const MontgomeryContext& ctx);

    /// \brief Limb width this scratch was sized for.
    size_t limb_count() const { return k_; }

   private:
    friend class MontgomeryContext;

    /// Grows the exponentiation buffers; no-op once sized (steady state
    /// allocates nothing).
    void EnsureExpBuffers(size_t k);

    size_t k_;
    std::vector<uint64_t> t_;       // k+2 CIOS accumulator
    std::vector<uint64_t> sq_;      // k: base^2 for the odd-power table
    std::vector<uint64_t> window_;  // kExpWindowTableSize * k odd powers
  };

  /// \brief Builds a context; `modulus` must be odd and > 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// \brief a * b mod n for a, b already reduced mod n (not in Montgomery
  ///        form; conversion happens internally). Convenience wrapper.
  BigInt Mul(const BigInt& a, const BigInt& b) const;

  /// \brief a^e mod n. Sliding-window exponentiation (kExpWindowBits).
  BigInt ModExp(const BigInt& a, const BigInt& e) const;

  // -- Value API for batched work (PIR row products) --

  /// \brief Converts into Montgomery form: aR mod n.
  std::vector<uint64_t> ToMontgomery(const BigInt& a) const;

  /// \brief Converts out of Montgomery form.
  BigInt FromMontgomery(const std::vector<uint64_t>& a) const;

  /// \brief Montgomery product of two Montgomery-form values (CIOS).
  std::vector<uint64_t> MontMul(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) const;

  /// \brief Montgomery form of 1 (i.e. R mod n) — the product identity.
  const std::vector<uint64_t>& One() const { return r_mod_n_; }

  /// \brief Limb width k of the modulus; all Montgomery vectors have size k.
  size_t limb_count() const { return k_; }

  // -- Scratch API: zero allocations per operation in steady state --
  //
  // All pointers refer to k = limb_count() limbs.

  /// \brief out = a * b * R^{-1} mod n for Montgomery-form a, b. `out` may
  ///        alias `a` and/or `b`: output limbs are written only after both
  ///        inputs have been fully consumed.
  void MontMulInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   Scratch* scratch) const;

  /// \brief Converts into Montgomery form without heap allocation for values
  ///        of at most k limbs (they need not be reduced below n — any
  ///        k-limb value is valid CIOS input). Wider values take a slow,
  ///        allocating pre-reduction path.
  void ToMontgomeryInto(const BigInt& a, uint64_t* out,
                        Scratch* scratch) const;

  /// \brief Bit-selected product chain, the PIR row kernel:
  ///          for j in [0, count):  acc *= factors[(2j + bit_j) * k]
  ///        with bit_j = (selector[j / 64] >> (j % 64)) & 1 and everything in
  ///        Montgomery form. Equivalent to `count` MontMulInto calls, but the
  ///        limb-width dispatch happens once for the whole chain and the
  ///        fixed-width kernel inlines into the loop — this is what makes the
  ///        inner loop run at register speed.
  void MontMulSelectInto(const uint64_t* factors, const uint64_t* selector,
                         size_t count, uint64_t* acc, Scratch* scratch) const;

  /// \brief out = base^e in Montgomery form; `base_mont` is Montgomery-form.
  ///        e == 0 yields the Montgomery form of 1. `out` must NOT alias
  ///        `base_mont` (it is initialized before the base is consumed).
  void ModExpInto(const uint64_t* base_mont, const BigInt& e, uint64_t* out,
                  Scratch* scratch) const;

  /// \brief Converts a Montgomery-form value to plain limbs (aR -> a).
  ///        `out` may alias `a`.
  void FromMontgomeryInto(const uint64_t* a, uint64_t* out,
                          Scratch* scratch) const;

 private:
  MontgomeryContext() = default;

  BigInt modulus_;
  std::vector<uint64_t> n_limbs_;
  std::vector<uint64_t> r_mod_n_;    // R mod n, Montgomery form of 1
  std::vector<uint64_t> r2_limbs_;   // R^2 mod n, k limbs, for ToMontgomery
  std::vector<uint64_t> one_plain_;  // plain 1, k limbs, for FromMontgomery
  BigInt r2_mod_n_;                  // R^2 mod n, for ToMontgomery
  uint64_t n_prime_ = 0;             // -n^{-1} mod 2^64
  size_t k_ = 0;
};

}  // namespace embellish::bignum

#endif  // EMBELLISH_BIGNUM_MONTGOMERY_H_
