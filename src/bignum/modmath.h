// Modular arithmetic over BigInt: the number theory needed by the crypto
// module — modular exponentiation, GCD/inverse, Jacobi symbol, and uniform
// sampling from residue classes.

#ifndef EMBELLISH_BIGNUM_MODMATH_H_
#define EMBELLISH_BIGNUM_MODMATH_H_

#include "bignum/bigint.h"
#include "common/rng.h"
#include "common/status.h"

namespace embellish::bignum {

/// \brief (a + b) mod m. Operands need not be reduced; operands that already
///        are skip their division entirely (the sum needs at most one
///        subtraction of m, never a full reduction).
BigInt ModAdd(const BigInt& a, const BigInt& b, const BigInt& m);

/// \brief (a - b) mod m, with the usual wrap into [0, m).
BigInt ModSub(const BigInt& a, const BigInt& b, const BigInt& m);

/// \brief (a * b) mod m. Operands need not be reduced; operands that already
///        are skip the pre-reduction division.
BigInt ModMul(const BigInt& a, const BigInt& b, const BigInt& m);

/// \brief (a * b) mod m for operands known to be reduced (a, b < m): the
///        fast path for hot callers, skipping both pre-reduction compares.
///        Asserts reducedness in debug builds.
BigInt ModMulReduced(const BigInt& a, const BigInt& b, const BigInt& m);

/// \brief a^e mod m via left-to-right square-and-multiply. For odd m of two
///        or more limbs, dispatches to the Montgomery path (montgomery.h),
///        which is ~3-4x faster on crypto-sized moduli.
BigInt ModExp(const BigInt& a, const BigInt& e, const BigInt& m);

/// \brief Greatest common divisor (binary GCD).
BigInt Gcd(const BigInt& a, const BigInt& b);

/// \brief Multiplicative inverse of a modulo m, if gcd(a, m) == 1.
Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

/// \brief Jacobi symbol (a/n) for odd n > 0. Returns -1, 0, or +1.
///
/// For n = p*q a product of two odd primes, a is a quadratic residue mod n
/// iff it is a QR mod both p and q; Jacobi(a, n) == 1 is necessary but not
/// sufficient — exactly the gap the KO-PIR protocol's security rests on.
int Jacobi(const BigInt& a, const BigInt& n);

/// \brief Uniform value in [0, bound). `bound` must be nonzero.
BigInt RandomBelow(const BigInt& bound, Rng* rng);

/// \brief Uniform value with exactly `bits` significant bits (top bit set).
BigInt RandomBits(size_t bits, Rng* rng);

/// \brief Uniform unit of Z*_n, i.e. gcd(result, n) == 1, result in [1, n).
BigInt RandomUnit(const BigInt& n, Rng* rng);

}  // namespace embellish::bignum

#endif  // EMBELLISH_BIGNUM_MODMATH_H_
