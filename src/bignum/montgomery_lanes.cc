#include "bignum/montgomery_lanes.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

// Unlike the MULX/ADX kernel in montgomery.cc — inline asm whose 14-operand
// constraint set becomes unsatisfiable once ASan/TSan instrumentation raises
// register pressure — the lane kernels are plain intrinsics that the
// sanitizers instrument like any other code. They therefore stay enabled in
// sanitizer builds (and CI runs them under TSan with EMBELLISH_KERNEL pinned
// to each tier); only the runtime CPU check gates them.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EMBELLISH_HAVE_LANE_SIMD 1
#include <immintrin.h>
#endif

namespace embellish::bignum {

namespace {

constexpr uint64_t kMask32 = 0xffffffffull;
constexpr uint64_t kMask52 = (uint64_t{1} << 52) - 1;
constexpr size_t kLaneStride = MontgomeryLaneContext::kMaxLanes;

int InternalRadixBits(MontKernel kernel) {
  return kernel == MontKernel::kIfma ? 52 : 32;
}

// n^{-1} mod 2^64 for odd n, by Newton iteration (x = n is already correct
// mod 8 since odd^2 ≡ 1 mod 8; each step doubles the valid bit count).
uint64_t InverseMod2_64(uint64_t n0) {
  uint64_t x = n0;
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  return x;
}

// Splits one lane's k64 64-bit limbs into ki radix-2^radix_bits limbs,
// written lane-major at block[j*kMaxLanes + lane]. Pure bit movement — the
// integer value is unchanged.
void SpreadLimbs(const uint64_t* in64, size_t k64, int radix_bits, size_t ki,
                 uint64_t* block, size_t lane) {
  const uint64_t mask = (uint64_t{1} << radix_bits) - 1;
  const size_t rb = static_cast<size_t>(radix_bits);
  for (size_t j = 0; j < ki; ++j) {
    const size_t s = rb * j;
    const size_t w = s / 64;
    const size_t sh = s % 64;
    uint64_t v = (w < k64) ? (in64[w] >> sh) : 0;
    if (sh + rb > 64 && w + 1 < k64) v |= in64[w + 1] << (64 - sh);
    block[j * kLaneStride + lane] = v & mask;
  }
}

// Inverse of SpreadLimbs: reassembles k64 64-bit limbs from one lane's
// normalized internal limbs (each < 2^radix_bits). Bits at or above
// 64*k64 are zero for reduced values and are dropped.
void GatherLimbs(const uint64_t* block, size_t lane, int radix_bits, size_t ki,
                 uint64_t* out64, size_t k64) {
  std::fill(out64, out64 + k64, uint64_t{0});
  const size_t rb = static_cast<size_t>(radix_bits);
  for (size_t j = 0; j < ki; ++j) {
    const uint64_t v = block[j * kLaneStride + lane];
    const size_t s = rb * j;
    const size_t w = s / 64;
    const size_t sh = s % 64;
    if (w < k64) out64[w] |= v << sh;
    if (sh + rb > 64 && w + 1 < k64) out64[w + 1] |= v >> (64 - sh);
  }
}

#if defined(EMBELLISH_HAVE_LANE_SIMD)

// ---------------------------------------------------------------------------
// AVX2 backend: 4 lanes per invocation, radix 2^32 limbs in 64-bit lanes.
//
// This is textbook CIOS transposed: every scalar variable of the 32-bit
// algorithm becomes a 4-lane vector, and the per-step bound
//   t[j] + a_i*b[j] + c  <=  (2^32-1) + (2^32-1)^2 + (2^32-1)  ==  2^64-1
// fits a 64-bit lane exactly, so carries are propagated eagerly with a
// shift — no lazy accumulation needed. vpmuludq (_mm256_mul_epu32) reads
// only the low 32 bits of each lane, which is precisely the masked limbs
// we keep. All row pointers use the Block stride of 8; the caller invokes
// the kernel once per 4-lane column group (offset 0 and, when more than 4
// lanes are live, offset 4 — disjoint columns, so the two calls may share
// accumulator rows and `out` may alias `a`/`b` across calls).
// ---------------------------------------------------------------------------
__attribute__((target("avx2"))) void MontMulLanes4Avx2(
    const uint64_t* a, const uint64_t* b, uint64_t* out, const uint64_t* n,
    const uint64_t* np, size_t ki, uint64_t* t) {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kMask32));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  const auto row = [](const uint64_t* base, size_t j) {
    return reinterpret_cast<const __m256i*>(base + j * kLaneStride);
  };
  const auto wrow = [](uint64_t* base, size_t j) {
    return reinterpret_cast<__m256i*>(base + j * kLaneStride);
  };

  for (size_t j = 0; j <= ki + 1; ++j) _mm256_storeu_si256(wrow(t, j), zero);
  const __m256i npv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(np));

  for (size_t i = 0; i < ki; ++i) {
    const __m256i ai = _mm256_loadu_si256(row(a, i));
    __m256i c = zero;
    for (size_t j = 0; j < ki; ++j) {
      const __m256i cur = _mm256_add_epi64(
          _mm256_add_epi64(_mm256_loadu_si256(row(t, j)),
                           _mm256_mul_epu32(ai, _mm256_loadu_si256(row(b, j)))),
          c);
      _mm256_storeu_si256(wrow(t, j), _mm256_and_si256(cur, mask));
      c = _mm256_srli_epi64(cur, 32);
    }
    __m256i cur = _mm256_add_epi64(_mm256_loadu_si256(row(t, ki)), c);
    _mm256_storeu_si256(wrow(t, ki), _mm256_and_si256(cur, mask));
    _mm256_storeu_si256(wrow(t, ki + 1), _mm256_srli_epi64(cur, 32));

    const __m256i t0 = _mm256_loadu_si256(row(t, 0));
    const __m256i m = _mm256_and_si256(_mm256_mul_epu32(t0, npv), mask);
    cur = _mm256_add_epi64(t0, _mm256_mul_epu32(m, _mm256_loadu_si256(row(n, 0))));
    c = _mm256_srli_epi64(cur, 32);
    for (size_t j = 1; j < ki; ++j) {
      cur = _mm256_add_epi64(
          _mm256_add_epi64(_mm256_loadu_si256(row(t, j)),
                           _mm256_mul_epu32(m, _mm256_loadu_si256(row(n, j)))),
          c);
      _mm256_storeu_si256(wrow(t, j - 1), _mm256_and_si256(cur, mask));
      c = _mm256_srli_epi64(cur, 32);
    }
    cur = _mm256_add_epi64(_mm256_loadu_si256(row(t, ki)), c);
    _mm256_storeu_si256(wrow(t, ki - 1), _mm256_and_si256(cur, mask));
    c = _mm256_srli_epi64(cur, 32);
    _mm256_storeu_si256(wrow(t, ki),
                        _mm256_add_epi64(_mm256_loadu_si256(row(t, ki + 1)), c));
    _mm256_storeu_si256(wrow(t, ki + 1), zero);
  }

  // Conditional subtract to the canonical representative: keep t when
  // t < n (top word zero AND the borrow chain underflowed), else t - n.
  // Limb values are < 2^32, so the 64-bit lane difference is sign-exact
  // and bit 63 is the borrow.
  __m256i borrow = zero;
  for (size_t j = 0; j < ki; ++j) {
    const __m256i d = _mm256_sub_epi64(
        _mm256_sub_epi64(_mm256_loadu_si256(row(t, j)),
                         _mm256_loadu_si256(row(n, j))),
        borrow);
    borrow = _mm256_srli_epi64(d, 63);
  }
  const __m256i keep =
      _mm256_and_si256(_mm256_cmpeq_epi64(_mm256_loadu_si256(row(t, ki)), zero),
                       _mm256_cmpeq_epi64(borrow, one));
  borrow = zero;
  for (size_t j = 0; j < ki; ++j) {
    const __m256i tj = _mm256_loadu_si256(row(t, j));
    const __m256i d =
        _mm256_sub_epi64(_mm256_sub_epi64(tj, _mm256_loadu_si256(row(n, j))),
                         borrow);
    borrow = _mm256_srli_epi64(d, 63);
    _mm256_storeu_si256(wrow(out, j),
                        _mm256_blendv_epi8(_mm256_and_si256(d, mask), tj, keep));
  }
}

// ---------------------------------------------------------------------------
// AVX-512 IFMA backend: 8 lanes, radix 2^52 limbs, lazy carries.
//
// vpmadd52luq/vpmadd52huq accumulate the low/high 52 bits of a 52x52
// product into a full 64-bit lane, so partial sums are left unnormalized:
// each accumulator row gains at most ~4*2^52 per outer iteration and lives
// at most ki+1 iterations, bounding it by ~4*(ki+1)*2^52 << 2^64 for every
// width this library uses. One carry is still propagated per iteration —
// t[0] must be exact mod 2^52 before the next m is derived from it — and
// the conceptual "shift right one limb" is an index rotation: the row
// window advances through a (2ki+2)-row scratch arena instead of moving
// data. A single normalization sweep plus the same borrow-chain select as
// the AVX2 kernel produces the canonical result.
// ---------------------------------------------------------------------------
__attribute__((target("avx512f,avx512vl,avx512ifma"))) void MontMulLanes8Ifma(
    const uint64_t* a, const uint64_t* b, uint64_t* out, const uint64_t* n,
    const uint64_t* np, size_t ki, uint64_t* t) {
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kMask52));
  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi64(1);
  const auto row = [](const uint64_t* base, size_t j) {
    return reinterpret_cast<const __m512i*>(base + j * kLaneStride);
  };
  const auto wrow = [](uint64_t* base, size_t j) {
    return reinterpret_cast<__m512i*>(base + j * kLaneStride);
  };

  for (size_t j = 0; j < 2 * ki + 2; ++j) _mm512_storeu_si512(wrow(t, j), zero);
  const __m512i npv = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(np));

  size_t base = 0;  // row window start; advancing it divides by 2^52
  for (size_t i = 0; i < ki; ++i, ++base) {
    const __m512i ai = _mm512_loadu_si512(row(a, i));
    for (size_t j = 0; j < ki; ++j) {
      _mm512_storeu_si512(
          wrow(t, base + j),
          _mm512_madd52lo_epu64(_mm512_loadu_si512(row(t, base + j)), ai,
                                _mm512_loadu_si512(row(b, j))));
    }
    const __m512i t0 = _mm512_loadu_si512(row(t, base));
    const __m512i m = _mm512_madd52lo_epu64(zero, t0, npv);
    for (size_t j = 0; j < ki; ++j) {
      _mm512_storeu_si512(
          wrow(t, base + j),
          _mm512_madd52lo_epu64(_mm512_loadu_si512(row(t, base + j)), m,
                                _mm512_loadu_si512(row(n, j))));
    }
    // t[0] is now ≡ 0 mod 2^52; push its upper bits into t[1] before the
    // window advances past it.
    const __m512i carry =
        _mm512_srli_epi64(_mm512_loadu_si512(row(t, base)), 52);
    _mm512_storeu_si512(
        wrow(t, base + 1),
        _mm512_add_epi64(_mm512_loadu_si512(row(t, base + 1)), carry));
    // High halves land one position up — exactly where the advanced window
    // expects them.
    for (size_t j = 0; j < ki; ++j) {
      __m512i acc = _mm512_loadu_si512(row(t, base + 1 + j));
      acc = _mm512_madd52hi_epu64(acc, ai, _mm512_loadu_si512(row(b, j)));
      acc = _mm512_madd52hi_epu64(acc, m, _mm512_loadu_si512(row(n, j)));
      _mm512_storeu_si512(wrow(t, base + 1 + j), acc);
    }
  }

  // Normalize the lazy accumulators into out (52-bit limbs) and capture the
  // top word; the true value is < 2n so the top is 0 or 1 per lane.
  __m512i c = zero;
  for (size_t j = 0; j < ki; ++j) {
    const __m512i cur =
        _mm512_add_epi64(_mm512_loadu_si512(row(t, base + j)), c);
    _mm512_storeu_si512(wrow(out, j), _mm512_and_si512(cur, mask));
    c = _mm512_srli_epi64(cur, 52);
  }
  const __m512i top =
      _mm512_add_epi64(_mm512_loadu_si512(row(t, base + ki)), c);

  __m512i borrow = zero;
  for (size_t j = 0; j < ki; ++j) {
    const __m512i d = _mm512_sub_epi64(
        _mm512_sub_epi64(_mm512_loadu_si512(row(out, j)),
                         _mm512_loadu_si512(row(n, j))),
        borrow);
    borrow = _mm512_srli_epi64(d, 63);
  }
  const __mmask8 keep = _mm512_cmpeq_epi64_mask(top, zero) &
                        _mm512_cmpeq_epi64_mask(borrow, one);
  borrow = zero;
  for (size_t j = 0; j < ki; ++j) {
    const __m512i tj = _mm512_loadu_si512(row(out, j));
    const __m512i d = _mm512_sub_epi64(
        _mm512_sub_epi64(tj, _mm512_loadu_si512(row(n, j))), borrow);
    borrow = _mm512_srli_epi64(d, 63);
    _mm512_storeu_si512(wrow(out, j),
                        _mm512_mask_mov_epi64(_mm512_and_si512(d, mask), keep, tj));
  }
}

#endif  // EMBELLISH_HAVE_LANE_SIMD

}  // namespace

// ---------------------------------------------------------------------------
// Scratch
// ---------------------------------------------------------------------------

MontgomeryLaneContext::Scratch::Scratch(const MontgomeryLaneContext& ctx)
    : t_((2 * ctx.ki_ + 2) * kMaxLanes, 0),
      tmp_(ctx.MakeBlock()),
      mont_(*ctx.contexts_[0]) {}

void MontgomeryLaneContext::Scratch::EnsureExpBuffers(
    const MontgomeryLaneContext& ctx) {
  if (sq_.size() < ctx.block_words_) sq_.assign(ctx.block_words_, 0);
  if (window_.size() < MontgomeryContext::kExpWindowTableSize) {
    window_.resize(MontgomeryContext::kExpWindowTableSize);
  }
  for (Block& w : window_) {
    if (w.size() < ctx.block_words_) w.assign(ctx.block_words_, 0);
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<MontgomeryLaneContext> MontgomeryLaneContext::Create(
    std::span<const MontgomeryContext* const> lanes) {
  return CreateWithKernel(lanes, SelectedKernel());
}

Result<MontgomeryLaneContext> MontgomeryLaneContext::CreateWithKernel(
    std::span<const MontgomeryContext* const> lanes, MontKernel kernel) {
  if (lanes.empty() || lanes.size() > kMaxLanes) {
    return Status::InvalidArgument("lane count must be in [1, 8]");
  }
  const size_t k64 = lanes[0]->limb_count();
  for (const MontgomeryContext* ctx : lanes) {
    if (ctx == nullptr) {
      return Status::InvalidArgument("lane context must not be null");
    }
    if (ctx->limb_count() != k64) {
      return Status::InvalidArgument("lane moduli must share one limb width");
    }
  }

  kernel = ClampToCpu(kernel);
  // The lane engine's tiers are the vector ones; the ADX tier belongs to the
  // scalar single-residue path, so anything below AVX2 delegates per lane.
  if (kernel < MontKernel::kAvx2) kernel = MontKernel::kScalar;
#if !defined(EMBELLISH_HAVE_LANE_SIMD)
  kernel = MontKernel::kScalar;
#endif

  MontgomeryLaneContext ctx;
  ctx.lanes_ = lanes.size();
  ctx.k64_ = k64;
  ctx.kernel_ = kernel;
  ctx.contexts_.assign(lanes.begin(), lanes.end());

  const int radix = InternalRadixBits(kernel);
  ctx.ki_ = kernel == MontKernel::kIfma ? (64 * k64 + 51) / 52
            : kernel == MontKernel::kAvx2 ? 2 * k64
                                          : k64;
  ctx.block_words_ = ctx.ki_ * kMaxLanes;
  ctx.one_block_.assign(ctx.block_words_, 0);

  if (!ctx.vectorized()) {
    // Lane-contiguous layout: lane l at [l*k64, (l+1)*k64).
    for (size_t l = 0; l < ctx.lanes_; ++l) {
      std::copy(lanes[l]->One().begin(), lanes[l]->One().end(),
                ctx.one_block_.begin() + l * k64);
    }
    return ctx;
  }

  ctx.n_block_.assign(ctx.block_words_, 0);
  ctx.nprime_lanes_.assign(kMaxLanes, 0);
  ctx.plain_one_.assign(ctx.block_words_, 0);
  const bool ifma = kernel == MontKernel::kIfma;
  if (ifma) {
    ctx.to_internal_.assign(ctx.block_words_, 0);
    ctx.from_internal_.assign(ctx.block_words_, 0);
  }

  std::vector<uint64_t> limbs(k64);
  const auto spread_bigint = [&](const BigInt& v, uint64_t* block, size_t l) {
    std::fill(limbs.begin(), limbs.end(), uint64_t{0});
    std::copy(v.limbs().begin(), v.limbs().end(), limbs.begin());
    SpreadLimbs(limbs.data(), k64, radix, ctx.ki_, block, l);
  };

  const uint64_t radix_mask = (uint64_t{1} << radix) - 1;
  for (size_t l = 0; l < kMaxLanes; ++l) {
    // Padding lanes replicate lane 0: valid moduli, results discarded.
    const size_t src = l < ctx.lanes_ ? l : 0;
    const MontgomeryContext& mc = *lanes[src];
    spread_bigint(mc.modulus(), ctx.n_block_.data(), l);
    ctx.nprime_lanes_[l] =
        (~InverseMod2_64(mc.modulus().Low64()) + 1) & radix_mask;
    ctx.plain_one_[l] = 1;
    if (ifma) {
      // R52 = 2^(52*ki) is the vector domain's Montgomery radix; the scalar
      // domain's is R = 2^(64*k64). Pack multiplies by R52^2 * R^{-1}
      // (= 2^(104*ki - 64*k64), exponent nonnegative since 52*ki >= 64*k64)
      // and Unpack by R mod n; both via MontMul52, which divides by R52.
      const BigInt& n = mc.modulus();
      spread_bigint(BigInt::PowerOfTwo(52 * ctx.ki_) % n,
                    ctx.one_block_.data(), l);
      spread_bigint(BigInt::PowerOfTwo(104 * ctx.ki_ - 64 * k64) % n,
                    ctx.to_internal_.data(), l);
      std::fill(limbs.begin(), limbs.end(), uint64_t{0});
      std::copy(mc.One().begin(), mc.One().end(), limbs.begin());
      SpreadLimbs(limbs.data(), k64, radix, ctx.ki_, ctx.from_internal_.data(),
                  l);
    } else {
      // Radix 2^32 with ki = 2*k64 has the same Montgomery radix as the
      // scalar engine (2^(32*2*k64) = 2^(64*k64)), so the packed form of
      // the scalar engine's One *is* the vector domain's One.
      std::fill(limbs.begin(), limbs.end(), uint64_t{0});
      std::copy(mc.One().begin(), mc.One().end(), limbs.begin());
      SpreadLimbs(limbs.data(), k64, radix, ctx.ki_, ctx.one_block_.data(), l);
    }
  }
  return ctx;
}

// ---------------------------------------------------------------------------
// Representation moves
// ---------------------------------------------------------------------------

void MontgomeryLaneContext::Pack(const uint64_t* const* lane_values, Block* out,
                                 Scratch* scratch) const {
  assert(out->size() == block_words_);
  if (!vectorized()) {
    for (size_t l = 0; l < lanes_; ++l) {
      std::memcpy(out->data() + l * k64_, lane_values[l],
                  k64_ * sizeof(uint64_t));
    }
    return;
  }
  const int radix = InternalRadixBits(kernel_);
  for (size_t l = 0; l < lanes_; ++l) {
    SpreadLimbs(lane_values[l], k64_, radix, ki_, out->data(), l);
  }
  for (size_t l = lanes_; l < kMaxLanes; ++l) {
    for (size_t j = 0; j < ki_; ++j) (*out)[j * kMaxLanes + l] = 0;
  }
  if (kernel_ == MontKernel::kIfma) {
    // Exact bit repack above left the value in the scalar Montgomery domain
    // (aR); this multiplication moves it to the 52-bit domain (aR52).
    MulSimd(*out, to_internal_, out, scratch);
  }
}

void MontgomeryLaneContext::Unpack(const Block& in, uint64_t* const* lane_values,
                                   Scratch* scratch) const {
  assert(in.size() == block_words_);
  if (!vectorized()) {
    for (size_t l = 0; l < lanes_; ++l) {
      std::memcpy(lane_values[l], in.data() + l * k64_,
                  k64_ * sizeof(uint64_t));
    }
    return;
  }
  const int radix = InternalRadixBits(kernel_);
  const Block* src = &in;
  if (kernel_ == MontKernel::kIfma) {
    MulSimd(in, from_internal_, &scratch->tmp_, scratch);
    src = &scratch->tmp_;
  }
  for (size_t l = 0; l < lanes_; ++l) {
    GatherLimbs(src->data(), l, radix, ki_, lane_values[l], k64_);
  }
}

void MontgomeryLaneContext::FromMontgomery(const Block& a,
                                           uint64_t* const* plain_out,
                                           Scratch* scratch) const {
  assert(a.size() == block_words_);
  if (!vectorized()) {
    for (size_t l = 0; l < lanes_; ++l) {
      contexts_[l]->FromMontgomeryInto(a.data() + l * k64_, plain_out[l],
                                       &scratch->mont_);
    }
    return;
  }
  // Montgomery-multiplying by plain 1 divides by the domain radix — same
  // construction as the scalar engine's FromMontgomeryInto, and the result
  // is the canonical plain value either way.
  MulSimd(a, plain_one_, &scratch->tmp_, scratch);
  const int radix = InternalRadixBits(kernel_);
  for (size_t l = 0; l < lanes_; ++l) {
    GatherLimbs(scratch->tmp_.data(), l, radix, ki_, plain_out[l], k64_);
  }
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

void MontgomeryLaneContext::Mul(const Block& a, const Block& b, Block* out,
                                Scratch* scratch) const {
  if (vectorized()) {
    MulSimd(a, b, out, scratch);
  } else {
    MulScalar(a, b, out, scratch);
  }
}

void MontgomeryLaneContext::MulScalar(const Block& a, const Block& b,
                                      Block* out, Scratch* scratch) const {
  for (size_t l = 0; l < lanes_; ++l) {
    contexts_[l]->MontMulInto(a.data() + l * k64_, b.data() + l * k64_,
                              out->data() + l * k64_, &scratch->mont_);
  }
}

void MontgomeryLaneContext::MulSimd(const Block& a, const Block& b, Block* out,
                                    Scratch* scratch) const {
  assert(a.size() == block_words_ && b.size() == block_words_ &&
         out->size() == block_words_);
#if defined(EMBELLISH_HAVE_LANE_SIMD)
  uint64_t* t = scratch->t_.data();
  if (kernel_ == MontKernel::kIfma) {
    MontMulLanes8Ifma(a.data(), b.data(), out->data(), n_block_.data(),
                      nprime_lanes_.data(), ki_, t);
    return;
  }
  MontMulLanes4Avx2(a.data(), b.data(), out->data(), n_block_.data(),
                    nprime_lanes_.data(), ki_, t);
  if (lanes_ > 4) {
    // Columns 4..7; disjoint from the first call, so sharing t is fine and
    // out aliasing a/b stays safe (the first call only wrote columns 0..3).
    MontMulLanes4Avx2(a.data() + 4, b.data() + 4, out->data() + 4,
                      n_block_.data() + 4, nprime_lanes_.data() + 4, ki_,
                      t + 4);
  }
#else
  (void)a;
  (void)b;
  (void)out;
  (void)scratch;
  assert(false && "SIMD lane kernel selected without SIMD support");
#endif
}

void MontgomeryLaneContext::BlendByMask(const Block& src,
                                        const uint64_t* lane_masks,
                                        Block* dst) const {
  for (size_t l = 0; l < lanes_; ++l) {
    if (lane_masks[l] == 0) continue;
    for (size_t j = 0; j < ki_; ++j) {
      (*dst)[j * kMaxLanes + l] = src[j * kMaxLanes + l];
    }
  }
}

void MontgomeryLaneContext::ModExpUniform(const Block& base, const BigInt& e,
                                          Block* out, Scratch* scratch) const {
  assert(out != &base && "out must not alias the base");
  if (!vectorized()) {
    for (size_t l = 0; l < lanes_; ++l) {
      contexts_[l]->ModExpInto(base.data() + l * k64_, e,
                               out->data() + l * k64_, &scratch->mont_);
    }
    return;
  }
  std::copy(one_block_.begin(), one_block_.end(), out->begin());
  if (e.IsZero()) return;
  const size_t bits = e.BitLength();

  if (bits <= static_cast<size_t>(MontgomeryContext::kExpWindowBits)) {
    for (size_t i = bits; i-- > 0;) {
      MulSimd(*out, *out, out, scratch);
      if (e.Bit(i)) MulSimd(*out, base, out, scratch);
    }
    return;
  }

  // Same sliding-window schedule as the scalar ModExpInto, lifted to lane
  // blocks: window_[i] = base^(2i+1) per lane.
  scratch->EnsureExpBuffers(*this);
  std::vector<Block>& win = scratch->window_;
  std::copy(base.begin(), base.end(), win[0].begin());
  MulSimd(base, base, &scratch->sq_, scratch);
  for (size_t i = 1; i < MontgomeryContext::kExpWindowTableSize; ++i) {
    MulSimd(win[i - 1], scratch->sq_, &win[i], scratch);
  }

  ptrdiff_t i = static_cast<ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!e.Bit(static_cast<size_t>(i))) {
      MulSimd(*out, *out, out, scratch);
      --i;
      continue;
    }
    ptrdiff_t l = i - (MontgomeryContext::kExpWindowBits - 1);
    if (l < 0) l = 0;
    while (!e.Bit(static_cast<size_t>(l))) ++l;
    uint32_t w = 0;
    for (ptrdiff_t j = i; j >= l; --j) {
      w = (w << 1) | static_cast<uint32_t>(e.Bit(static_cast<size_t>(j)));
    }
    for (ptrdiff_t j = i; j >= l; --j) {
      MulSimd(*out, *out, out, scratch);
    }
    MulSimd(*out, win[(w - 1) / 2], out, scratch);
    i = l - 1;
  }
}

void MontgomeryLaneContext::ModExpSmall(const Block& base, const uint64_t* exps,
                                        Block* out, Scratch* scratch) const {
  assert(out != &base && "out must not alias the base");
  if (!vectorized()) {
    for (size_t l = 0; l < lanes_; ++l) {
      contexts_[l]->ModExpInto(base.data() + l * k64_, BigInt(exps[l]),
                               out->data() + l * k64_, &scratch->mont_);
    }
    return;
  }
  std::copy(one_block_.begin(), one_block_.end(), out->begin());
  uint64_t any = 0;
  for (size_t l = 0; l < lanes_; ++l) any |= exps[l];
  if (any == 0) return;

  // Square-always / multiply-always: exponents diverge per lane, so every
  // round performs the multiplication and a per-lane blend decides whether
  // it lands — uniform lane work, no branches on exponent bits.
  scratch->EnsureExpBuffers(*this);
  uint64_t masks[kMaxLanes];
  for (size_t i = 64 - static_cast<size_t>(std::countl_zero(any)); i-- > 0;) {
    MulSimd(*out, *out, out, scratch);
    MulSimd(*out, base, &scratch->sq_, scratch);
    for (size_t l = 0; l < lanes_; ++l) {
      masks[l] = ((exps[l] >> i) & 1) != 0 ? ~uint64_t{0} : 0;
    }
    BlendByMask(scratch->sq_, masks, out);
  }
}

}  // namespace embellish::bignum
