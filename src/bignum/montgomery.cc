#include "bignum/montgomery.h"

#include <cassert>
#include <cstring>

#include "common/cpuinfo.h"

namespace embellish::bignum {

namespace {

using u128 = unsigned __int128;

// Inverse of odd x modulo 2^64 by Newton iteration; 6 steps double the
// precision from the 3 correct low bits of x itself.
uint64_t InverseMod2_64(uint64_t x) {
  assert(x & 1);
  uint64_t inv = x;  // correct mod 2^3
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - x * inv;
  }
  return inv;
}

// Fixed-width CIOS kernel: the loop bounds are compile-time constants, so
// the compiler fully unrolls the limb loops and keeps the accumulator in
// registers. Crypto-sized moduli hit this path (k = 4 for 256-bit keys,
// k = 8 for 512-bit / Paillier n^2); odd widths fall back to the generic
// scratch loop. `out` may alias `a`/`b` — the result is staged in `res`.
template <size_t K>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#else
inline
#endif
void MontMulFixed(const uint64_t* a, const uint64_t* b, const uint64_t* n,
                  uint64_t n_prime, uint64_t* out) {
  uint64_t t[K + 2] = {0};
  for (size_t i = 0; i < K; ++i) {
    const uint64_t ai = a[i];
    u128 carry = 0;
    for (size_t j = 0; j < K; ++j) {
      u128 cur =
          static_cast<u128>(ai) * b[j] + t[j] + static_cast<uint64_t>(carry);
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[K]) + static_cast<uint64_t>(carry);
    t[K] = static_cast<uint64_t>(cur);
    t[K + 1] = static_cast<uint64_t>(cur >> 64);

    const uint64_t m_val = t[0] * n_prime;
    u128 acc = static_cast<u128>(m_val) * n[0] + t[0];
    carry = acc >> 64;
    for (size_t j = 1; j < K; ++j) {
      acc = static_cast<u128>(m_val) * n[j] + t[j] +
            static_cast<uint64_t>(carry);
      t[j - 1] = static_cast<uint64_t>(acc);
      carry = acc >> 64;
    }
    acc = static_cast<u128>(t[K]) + static_cast<uint64_t>(carry);
    t[K - 1] = static_cast<uint64_t>(acc);
    t[K] = t[K + 1] + static_cast<uint64_t>(acc >> 64);
    t[K + 1] = 0;
  }

  bool geq = t[K] != 0;
  if (!geq) {
    geq = true;
    for (size_t i = K; i-- > 0;) {
      if (t[i] != n[i]) {
        geq = t[i] > n[i];
        break;
      }
    }
  }
  if (geq) {
    u128 borrow = 0;
    for (size_t i = 0; i < K; ++i) {
      u128 diff =
          static_cast<u128>(t[i]) - n[i] - static_cast<uint64_t>(borrow);
      out[i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
  } else {
    for (size_t i = 0; i < K; ++i) out[i] = t[i];
  }
}

// ASan's/TSan's instrumentation raises register pressure enough that the
// 14-operand asm constraints below become unsatisfiable, so sanitizer builds
// fall back to the portable fixed-width kernels (the dispatch sites check
// the macro).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EMBELLISH_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EMBELLISH_SANITIZER_BUILD 1
#endif
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(EMBELLISH_SANITIZER_BUILD)
#define EMBELLISH_HAVE_X86_ADX_KERNEL 1

// True when the dispatch ladder selects at least the ADX tier: the CPU has
// MULX (BMI2) and ADCX/ADOX (ADX), and neither EMBELLISH_KERNEL nor a bench
// override pinned the process to the scalar tier. The kernel is inline asm,
// so it needs no compile-time -march flags — only this runtime check.
bool CpuHasAdx() {
  return SelectedKernel() >= MontKernel::kAdx;
}

// 256-bit (k = 4) CIOS round with dual carry chains: MULX leaves flags
// untouched, so the low-limb additions ride the CF chain (ADCX) while the
// high-limb additions ride the OF chain (ADOX) — twice the add throughput of
// the compiler's single-adc code, which is what the generic kernel is bound
// by. The accumulator x0..x3 and modulus n0..n3 stay in registers across an
// entire fold chain; only the factor `b` is read from memory.
//
// In: x = value in Montgomery form, b = factor in Montgomery form.
// Out: x = x * b * R^{-1} mod n, fully reduced (branchless final subtract).
__attribute__((always_inline)) inline void MontMul4Adx(
    uint64_t& x0, uint64_t& x1, uint64_t& x2, uint64_t& x3, const uint64_t* b,
    uint64_t n0, uint64_t n1, uint64_t n2, uint64_t n3, uint64_t n_prime) {
  uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0;
  const uint64_t xs[4] = {x0, x1, x2, x3};
  for (int i = 0; i < 4; ++i) {
    const uint64_t ai = xs[i];
    uint64_t t5 = 0;
    // t += ai * b
    __asm__(
        "xor %%r11d, %%r11d\n\t"  // clear CF and OF
        "movq %[ai], %%rdx\n\t"
        "mulxq 0(%[b]), %%r8, %%r9\n\t"
        "adcxq %%r8, %[t0]\n\t"
        "adoxq %%r9, %[t1]\n\t"
        "mulxq 8(%[b]), %%r8, %%r9\n\t"
        "adcxq %%r8, %[t1]\n\t"
        "adoxq %%r9, %[t2]\n\t"
        "mulxq 16(%[b]), %%r8, %%r9\n\t"
        "adcxq %%r8, %[t2]\n\t"
        "adoxq %%r9, %[t3]\n\t"
        "mulxq 24(%[b]), %%r8, %%r9\n\t"
        "adcxq %%r8, %[t3]\n\t"
        "adoxq %%r9, %[t4]\n\t"
        "adcxq %%r11, %[t4]\n\t"  // fold CF into t4
        "adoxq %%r11, %[t5]\n\t"  // fold OF into t5
        "adcxq %%r11, %[t5]\n\t"  // plus t4's CF overflow
        : [t0] "+r"(t0), [t1] "+r"(t1), [t2] "+r"(t2), [t3] "+r"(t3),
          [t4] "+r"(t4), [t5] "+r"(t5)
        : [ai] "r"(ai), [b] "r"(b)
        : "rdx", "r8", "r9", "r11", "cc");
    // t = (t + m*n) / 2^64 with m = t0 * n'
    const uint64_t m = t0 * n_prime;
    __asm__(
        "xor %%r11d, %%r11d\n\t"
        "movq %[m], %%rdx\n\t"
        "mulxq %[n0], %%r8, %%r9\n\t"
        "adcxq %%r8, %[t0]\n\t"  // t0 -> 0 by construction; CF carries on
        "adoxq %%r9, %[t1]\n\t"
        "mulxq %[n1], %%r8, %%r9\n\t"
        "adcxq %%r8, %[t1]\n\t"
        "adoxq %%r9, %[t2]\n\t"
        "mulxq %[n2], %%r8, %%r9\n\t"
        "adcxq %%r8, %[t2]\n\t"
        "adoxq %%r9, %[t3]\n\t"
        "mulxq %[n3], %%r8, %%r9\n\t"
        "adcxq %%r8, %[t3]\n\t"
        "adoxq %%r9, %[t4]\n\t"
        "adcxq %%r11, %[t4]\n\t"
        "adoxq %%r11, %[t5]\n\t"
        "adcxq %%r11, %[t5]\n\t"
        : [t0] "+r"(t0), [t1] "+r"(t1), [t2] "+r"(t2), [t3] "+r"(t3),
          [t4] "+r"(t4), [t5] "+r"(t5)
        : [m] "r"(m), [n0] "r"(n0), [n1] "r"(n1), [n2] "r"(n2), [n3] "r"(n3)
        : "rdx", "r8", "r9", "r11", "cc");
    t0 = t1;  // drop the now-zero low limb
    t1 = t2;
    t2 = t3;
    t3 = t4;
    t4 = t5;
  }
  // Branchless conditional subtract: the select outcome is data-random in
  // the PIR workload, so a cmov-style mask beats a 50%-mispredicted branch.
  uint64_t s0, s1, s2, s3, nb;
  __asm__(
      "movq %[t0], %[s0]\n\t"
      "movq %[t1], %[s1]\n\t"
      "movq %[t2], %[s2]\n\t"
      "movq %[t3], %[s3]\n\t"
      "subq %[n0], %[s0]\n\t"
      "sbbq %[n1], %[s1]\n\t"
      "sbbq %[n2], %[s2]\n\t"
      "sbbq %[n3], %[s3]\n\t"
      "sbbq %[nb], %[nb]\n\t"  // nb = borrow ? ~0 : 0
      : [s0] "=&r"(s0), [s1] "=&r"(s1), [s2] "=&r"(s2), [s3] "=&r"(s3),
        [nb] "=&r"(nb)
      : [t0] "r"(t0), [t1] "r"(t1), [t2] "r"(t2), [t3] "r"(t3), [n0] "r"(n0),
        [n1] "r"(n1), [n2] "r"(n2), [n3] "r"(n3)
      : "cc");
  // Keep t only when it borrowed and the overflow limb is clear.
  const uint64_t keep_t = nb & (t4 == 0 ? ~uint64_t{0} : 0);
  x0 = (s0 & ~keep_t) | (t0 & keep_t);
  x1 = (s1 & ~keep_t) | (t1 & keep_t);
  x2 = (s2 & ~keep_t) | (t2 & keep_t);
  x3 = (s3 & ~keep_t) | (t3 & keep_t);
}

// Select-and-fold chain on the ADX kernel (see MontMulSelectInto).
void MontMulSelect4Adx(const uint64_t* factors, const uint64_t* selector,
                       size_t count, const uint64_t* n, uint64_t n_prime,
                       uint64_t* acc) {
  uint64_t x0 = acc[0], x1 = acc[1], x2 = acc[2], x3 = acc[3];
  const uint64_t n0 = n[0], n1 = n[1], n2 = n[2], n3 = n[3];
  for (size_t j = 0; j < count; ++j) {
    const uint64_t bit = (selector[j >> 6] >> (j & 63)) & 1;
    MontMul4Adx(x0, x1, x2, x3, factors + (2 * j + bit) * 4, n0, n1, n2, n3,
                n_prime);
  }
  acc[0] = x0;
  acc[1] = x1;
  acc[2] = x2;
  acc[3] = x3;
}

#endif  // x86-64 ADX kernel

// Select-and-fold chain with the fixed kernel inlined (see
// MontMulSelectInto).
template <size_t K>
void MontMulSelectFixed(const uint64_t* factors, const uint64_t* selector,
                        size_t count, const uint64_t* n, uint64_t n_prime,
                        uint64_t* acc) {
  // The accumulator lives in a local array across the whole chain so the
  // inlined kernel keeps it in registers instead of storing/reloading
  // through `acc` every multiplication.
  uint64_t local[K];
  for (size_t i = 0; i < K; ++i) local[i] = acc[i];
  for (size_t j = 0; j < count; ++j) {
    const uint64_t bit = (selector[j >> 6] >> (j & 63)) & 1;
    MontMulFixed<K>(local, factors + (2 * j + bit) * K, n, n_prime, local);
  }
  for (size_t i = 0; i < K; ++i) acc[i] = local[i];
}

}  // namespace

MontgomeryContext::Scratch::Scratch(const MontgomeryContext& ctx)
    : k_(ctx.limb_count()), t_(k_ + 2, 0) {}

void MontgomeryContext::Scratch::EnsureExpBuffers(size_t k) {
  if (sq_.size() < k) sq_.resize(k);
  if (window_.size() < kExpWindowTableSize * k) {
    window_.resize(kExpWindowTableSize * k);
  }
}

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus.IsZero() || modulus.IsOne()) {
    return Status::InvalidArgument("Montgomery modulus must be > 1");
  }
  if (!modulus.IsOdd()) {
    return Status::InvalidArgument("Montgomery modulus must be odd");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.n_limbs_ = modulus.limbs();
  ctx.k_ = ctx.n_limbs_.size();
  ctx.n_prime_ = ~InverseMod2_64(ctx.n_limbs_[0]) + 1;  // -n^{-1} mod 2^64
  BigInt r = BigInt::PowerOfTwo(64 * ctx.k_);
  BigInt r_mod = r % modulus;
  ctx.r_mod_n_ = r_mod.limbs();
  ctx.r_mod_n_.resize(ctx.k_, 0);
  ctx.r2_mod_n_ = r_mod * r_mod % modulus;
  ctx.r2_limbs_ = ctx.r2_mod_n_.limbs();
  ctx.r2_limbs_.resize(ctx.k_, 0);
  ctx.one_plain_.assign(ctx.k_, 0);
  ctx.one_plain_[0] = 1;
  return ctx;
}

void MontgomeryContext::MontMulInto(const uint64_t* a, const uint64_t* b,
                                    uint64_t* out, Scratch* scratch) const {
  const size_t k = k_;
  assert(scratch != nullptr && scratch->k_ >= k);
  const uint64_t* n = n_limbs_.data();
  switch (k) {
    case 2: return MontMulFixed<2>(a, b, n, n_prime_, out);
    case 3: return MontMulFixed<3>(a, b, n, n_prime_, out);
    case 4:
#ifdef EMBELLISH_HAVE_X86_ADX_KERNEL
      if (CpuHasAdx()) {
        uint64_t x0 = a[0], x1 = a[1], x2 = a[2], x3 = a[3];
        MontMul4Adx(x0, x1, x2, x3, b, n[0], n[1], n[2], n[3], n_prime_);
        out[0] = x0;
        out[1] = x1;
        out[2] = x2;
        out[3] = x3;
        return;
      }
#endif
      return MontMulFixed<4>(a, b, n, n_prime_, out);
    case 6: return MontMulFixed<6>(a, b, n, n_prime_, out);
    case 8: return MontMulFixed<8>(a, b, n, n_prime_, out);
    case 16: return MontMulFixed<16>(a, b, n, n_prime_, out);
    default: break;
  }
  uint64_t* t = scratch->t_.data();
  std::memset(t, 0, (k + 2) * sizeof(uint64_t));

  // CIOS: t has k+2 limbs.
  for (size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    const uint64_t ai = a[i];
    u128 carry = 0;
    for (size_t j = 0; j < k; ++j) {
      u128 cur =
          static_cast<u128>(ai) * b[j] + t[j] + static_cast<uint64_t>(carry);
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[k]) + static_cast<uint64_t>(carry);
    t[k] = static_cast<uint64_t>(cur);
    t[k + 1] = static_cast<uint64_t>(cur >> 64);

    // Reduction: make t divisible by 2^64.
    const uint64_t m_val = t[0] * n_prime_;
    u128 acc = static_cast<u128>(m_val) * n[0] + t[0];
    carry = acc >> 64;
    for (size_t j = 1; j < k; ++j) {
      acc = static_cast<u128>(m_val) * n[j] + t[j] +
            static_cast<uint64_t>(carry);
      t[j - 1] = static_cast<uint64_t>(acc);
      carry = acc >> 64;
    }
    acc = static_cast<u128>(t[k]) + static_cast<uint64_t>(carry);
    t[k - 1] = static_cast<uint64_t>(acc);
    t[k] = t[k + 1] + static_cast<uint64_t>(acc >> 64);
    t[k + 1] = 0;
  }

  // Final conditional subtraction: t is in [0, 2n).
  bool geq = t[k] != 0;
  if (!geq) {
    geq = true;
    for (size_t i = k; i-- > 0;) {
      if (t[i] != n[i]) {
        geq = t[i] > n[i];
        break;
      }
    }
  }
  if (geq) {
    u128 borrow = 0;
    for (size_t i = 0; i < k; ++i) {
      u128 diff =
          static_cast<u128>(t[i]) - n[i] - static_cast<uint64_t>(borrow);
      out[i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
  } else {
    std::memcpy(out, t, k * sizeof(uint64_t));
  }
}

void MontgomeryContext::MontMulSelectInto(const uint64_t* factors,
                                          const uint64_t* selector,
                                          size_t count, uint64_t* acc,
                                          Scratch* scratch) const {
  const uint64_t* n = n_limbs_.data();
  switch (k_) {
    case 2: return MontMulSelectFixed<2>(factors, selector, count, n,
                                         n_prime_, acc);
    case 3: return MontMulSelectFixed<3>(factors, selector, count, n,
                                         n_prime_, acc);
    case 4:
#ifdef EMBELLISH_HAVE_X86_ADX_KERNEL
      if (CpuHasAdx()) {
        return MontMulSelect4Adx(factors, selector, count, n, n_prime_, acc);
      }
#endif
      return MontMulSelectFixed<4>(factors, selector, count, n,
                                   n_prime_, acc);
    case 6: return MontMulSelectFixed<6>(factors, selector, count, n,
                                         n_prime_, acc);
    case 8: return MontMulSelectFixed<8>(factors, selector, count, n,
                                         n_prime_, acc);
    case 16: return MontMulSelectFixed<16>(factors, selector, count, n,
                                           n_prime_, acc);
    default: break;
  }
  for (size_t j = 0; j < count; ++j) {
    const uint64_t bit = (selector[j >> 6] >> (j & 63)) & 1;
    MontMulInto(acc, factors + (2 * j + bit) * k_, acc, scratch);
  }
}

void MontgomeryContext::ToMontgomeryInto(const BigInt& a, uint64_t* out,
                                         Scratch* scratch) const {
  // A zero BigInt has no limbs and a null data(); memcpy from a null
  // pointer is UB even for zero bytes, so guard the empty case.
  const auto copy_limbs = [this, out](const std::vector<uint64_t>& limbs) {
    if (!limbs.empty()) {
      std::memcpy(out, limbs.data(), limbs.size() * sizeof(uint64_t));
    }
    std::memset(out + limbs.size(), 0,
                (k_ - limbs.size()) * sizeof(uint64_t));
  };
  const std::vector<uint64_t>& limbs = a.limbs();
  if (limbs.size() <= k_) {
    copy_limbs(limbs);
  } else {
    const BigInt reduced = a % modulus_;  // slow path: wider than the modulus
    copy_limbs(reduced.limbs());
  }
  MontMulInto(out, r2_limbs_.data(), out, scratch);
}

void MontgomeryContext::ModExpInto(const uint64_t* base_mont, const BigInt& e,
                                   uint64_t* out, Scratch* scratch) const {
  const size_t k = k_;
  assert(scratch != nullptr && scratch->k_ >= k);
  assert(out != base_mont && "out must not alias the base");
  std::memcpy(out, r_mod_n_.data(), k * sizeof(uint64_t));  // Montgomery 1
  if (e.IsZero()) return;
  const size_t bits = e.BitLength();

  if (bits <= static_cast<size_t>(kExpWindowBits)) {
    // Tiny exponent: plain square-and-multiply, no table setup.
    for (size_t i = bits; i-- > 0;) {
      MontMulInto(out, out, out, scratch);
      if (e.Bit(i)) MontMulInto(out, base_mont, out, scratch);
    }
    return;
  }

  // Odd-power table: window_[i] = base^(2i+1) in Montgomery form.
  scratch->EnsureExpBuffers(k);
  uint64_t* win = scratch->window_.data();
  uint64_t* sq = scratch->sq_.data();
  std::memcpy(win, base_mont, k * sizeof(uint64_t));
  MontMulInto(base_mont, base_mont, sq, scratch);
  for (size_t i = 1; i < kExpWindowTableSize; ++i) {
    MontMulInto(win + (i - 1) * k, sq, win + i * k, scratch);
  }

  // Left-to-right sliding window.
  ptrdiff_t i = static_cast<ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!e.Bit(static_cast<size_t>(i))) {
      MontMulInto(out, out, out, scratch);
      --i;
      continue;
    }
    // Window [l, i], chosen so bit l is set and the width is at most
    // kExpWindowBits; the window value is therefore odd.
    ptrdiff_t l = i - (kExpWindowBits - 1);
    if (l < 0) l = 0;
    while (!e.Bit(static_cast<size_t>(l))) ++l;
    uint32_t w = 0;
    for (ptrdiff_t j = i; j >= l; --j) {
      w = (w << 1) | static_cast<uint32_t>(e.Bit(static_cast<size_t>(j)));
    }
    for (ptrdiff_t j = i; j >= l; --j) {
      MontMulInto(out, out, out, scratch);
    }
    MontMulInto(out, win + ((w - 1) / 2) * k, out, scratch);
    i = l - 1;
  }
}

void MontgomeryContext::FromMontgomeryInto(const uint64_t* a, uint64_t* out,
                                           Scratch* scratch) const {
  MontMulInto(a, one_plain_.data(), out, scratch);
}

std::vector<uint64_t> MontgomeryContext::MontMul(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) const {
  assert(a.size() == k_ && b.size() == k_);
  Scratch scratch(*this);
  std::vector<uint64_t> out(k_);
  MontMulInto(a.data(), b.data(), out.data(), &scratch);
  return out;
}

std::vector<uint64_t> MontgomeryContext::ToMontgomery(const BigInt& a) const {
  const BigInt* reduced = &a;
  BigInt tmp;
  if (a >= modulus_) {
    tmp = a % modulus_;
    reduced = &tmp;
  }
  std::vector<uint64_t> limbs = reduced->limbs();
  limbs.resize(k_, 0);
  Scratch scratch(*this);
  std::vector<uint64_t> out(k_);
  MontMulInto(limbs.data(), r2_limbs_.data(), out.data(), &scratch);
  return out;
}

BigInt MontgomeryContext::FromMontgomery(
    const std::vector<uint64_t>& a) const {
  Scratch scratch(*this);
  std::vector<uint64_t> plain(k_);
  MontMulInto(a.data(), one_plain_.data(), plain.data(), &scratch);
  return BigInt::FromLimbs(std::move(plain));
}

BigInt MontgomeryContext::Mul(const BigInt& a, const BigInt& b) const {
  return FromMontgomery(MontMul(ToMontgomery(a), ToMontgomery(b)));
}

BigInt MontgomeryContext::ModExp(const BigInt& a, const BigInt& e) const {
  if (e.IsZero()) return BigInt(1) % modulus_;
  std::vector<uint64_t> base = ToMontgomery(a);
  Scratch scratch(*this);
  std::vector<uint64_t> result(k_);
  ModExpInto(base.data(), e, result.data(), &scratch);
  FromMontgomeryInto(result.data(), result.data(), &scratch);
  return BigInt::FromLimbs(std::move(result));
}

}  // namespace embellish::bignum
