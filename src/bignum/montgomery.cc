#include "bignum/montgomery.h"

#include <cassert>

namespace embellish::bignum {

namespace {

using u128 = unsigned __int128;

// Inverse of odd x modulo 2^64 by Newton iteration; 6 steps double the
// precision from the 3 correct low bits of x itself.
uint64_t InverseMod2_64(uint64_t x) {
  assert(x & 1);
  uint64_t inv = x;  // correct mod 2^3
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - x * inv;
  }
  return inv;
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus.IsZero() || modulus.IsOne()) {
    return Status::InvalidArgument("Montgomery modulus must be > 1");
  }
  if (!modulus.IsOdd()) {
    return Status::InvalidArgument("Montgomery modulus must be odd");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.n_limbs_ = modulus.limbs();
  ctx.k_ = ctx.n_limbs_.size();
  ctx.n_prime_ = ~InverseMod2_64(ctx.n_limbs_[0]) + 1;  // -n^{-1} mod 2^64
  BigInt r = BigInt::PowerOfTwo(64 * ctx.k_);
  BigInt r_mod = r % modulus;
  ctx.r_mod_n_ = r_mod.limbs();
  ctx.r_mod_n_.resize(ctx.k_, 0);
  ctx.r2_mod_n_ = r_mod * r_mod % modulus;
  return ctx;
}

std::vector<uint64_t> MontgomeryContext::MontMul(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) const {
  const size_t k = k_;
  assert(a.size() == k && b.size() == k);
  // CIOS: t has k+2 limbs.
  std::vector<uint64_t> t(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    uint64_t ai = a[i];
    u128 carry = 0;
    for (size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + t[j] + static_cast<uint64_t>(carry);
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[k]) + static_cast<uint64_t>(carry);
    t[k] = static_cast<uint64_t>(cur);
    t[k + 1] = static_cast<uint64_t>(cur >> 64);

    // Reduction: make t divisible by 2^64.
    uint64_t m_val = t[0] * n_prime_;
    u128 acc = static_cast<u128>(m_val) * n_limbs_[0] + t[0];
    carry = acc >> 64;
    for (size_t j = 1; j < k; ++j) {
      acc = static_cast<u128>(m_val) * n_limbs_[j] + t[j] +
            static_cast<uint64_t>(carry);
      t[j - 1] = static_cast<uint64_t>(acc);
      carry = acc >> 64;
    }
    acc = static_cast<u128>(t[k]) + static_cast<uint64_t>(carry);
    t[k - 1] = static_cast<uint64_t>(acc);
    t[k] = t[k + 1] + static_cast<uint64_t>(acc >> 64);
    t[k + 1] = 0;
  }

  // Final conditional subtraction: result may be in [0, 2n).
  bool geq = t[k] != 0;
  if (!geq) {
    geq = true;
    for (size_t i = k; i-- > 0;) {
      if (t[i] != n_limbs_[i]) {
        geq = t[i] > n_limbs_[i];
        break;
      }
    }
  }
  std::vector<uint64_t> out(t.begin(), t.begin() + k);
  if (geq) {
    u128 borrow = 0;
    for (size_t i = 0; i < k; ++i) {
      u128 diff = static_cast<u128>(out[i]) - n_limbs_[i] -
                  static_cast<uint64_t>(borrow);
      out[i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
  }
  return out;
}

std::vector<uint64_t> MontgomeryContext::ToMontgomery(const BigInt& a) const {
  BigInt reduced = a % modulus_;
  std::vector<uint64_t> limbs = reduced.limbs();
  limbs.resize(k_, 0);
  std::vector<uint64_t> r2 = r2_mod_n_.limbs();
  r2.resize(k_, 0);
  return MontMul(limbs, r2);
}

BigInt MontgomeryContext::FromMontgomery(
    const std::vector<uint64_t>& a) const {
  std::vector<uint64_t> one(k_, 0);
  one[0] = 1;
  std::vector<uint64_t> plain = MontMul(a, one);
  return BigInt::FromLimbs(std::move(plain));
}

BigInt MontgomeryContext::Mul(const BigInt& a, const BigInt& b) const {
  return FromMontgomery(MontMul(ToMontgomery(a), ToMontgomery(b)));
}

BigInt MontgomeryContext::ModExp(const BigInt& a, const BigInt& e) const {
  if (e.IsZero()) return BigInt(1) % modulus_;
  std::vector<uint64_t> base = ToMontgomery(a);
  std::vector<uint64_t> result = r_mod_n_;  // Montgomery form of 1
  for (size_t i = e.BitLength(); i-- > 0;) {
    result = MontMul(result, result);
    if (e.Bit(i)) result = MontMul(result, base);
  }
  return FromMontgomery(result);
}

}  // namespace embellish::bignum
