#include "bignum/prime.h"

#include <cassert>

#include "bignum/modmath.h"

namespace embellish::bignum {

namespace {

constexpr uint64_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller-Rabin round: true if `a` passes (n may still be composite).
bool MillerRabinWitness(const BigInt& n, const BigInt& n_minus_1,
                        const BigInt& d, size_t s, const BigInt& a) {
  BigInt x = ModExp(a, d, n);
  if (x.IsOne() || x == n_minus_1) return true;
  for (size_t i = 1; i < s; ++i) {
    x = x * x % n;
    if (x == n_minus_1) return true;
    if (x.IsOne()) return false;  // nontrivial sqrt of 1 => composite
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigInt& n, Rng* rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (uint64_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  // Write n-1 = d * 2^s with d odd.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Uniform base in [2, n-2].
    BigInt a = RandomBelow(n - BigInt(3), rng) + BigInt(2);
    if (!MillerRabinWitness(n, n_minus_1, d, s, a)) return false;
  }
  return true;
}

BigInt RandomPrime(size_t bits, Rng* rng) {
  assert(bits >= 8);
  while (true) {
    BigInt candidate = RandomBits(bits, rng);
    if (candidate.IsEven()) candidate += BigInt(1);
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

Result<BigInt> RandomPrimeCongruentOneModR(size_t bits, const BigInt& r,
                                           Rng* rng) {
  if (r < BigInt(2)) {
    return Status::InvalidArgument("r must be >= 2");
  }
  size_t r_bits = r.BitLength();
  if (r_bits + 8 > bits) {
    return Status::InvalidArgument("r too large for requested prime width");
  }
  // Construct p = r*m + 1 with m sized so p has exactly `bits` bits, then
  // test primality and the gcd(r, (p-1)/r) = gcd(r, m) = 1 condition.
  for (int attempts = 0; attempts < 200000; ++attempts) {
    BigInt m = RandomBits(bits - r_bits + 1, rng);
    BigInt p = r * m + BigInt(1);
    if (p.BitLength() != bits) continue;
    if (!Gcd(r, m).IsOne()) continue;
    if (IsProbablePrime(p, rng)) return p;
  }
  return Status::Internal("prime search exhausted attempt budget");
}

Result<BigInt> RandomPrimeCoprimePMinus1(size_t bits, const BigInt& r,
                                         Rng* rng) {
  if (r < BigInt(2)) {
    return Status::InvalidArgument("r must be >= 2");
  }
  for (int attempts = 0; attempts < 200000; ++attempts) {
    BigInt p = RandomPrime(bits, rng);
    if (Gcd(r, p - BigInt(1)).IsOne()) return p;
  }
  return Status::Internal("prime search exhausted attempt budget");
}

}  // namespace embellish::bignum
