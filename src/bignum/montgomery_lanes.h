// Multi-buffer (vertical) SIMD Montgomery engine: up to 8 *independent*
// residues advance in lockstep, one per SIMD lane. This is the standard
// multi-buffer crypto technique — no attempt is made to vectorize a single
// wide multiplication; instead the batch dimension the callers already have
// (independent EncryptBatch messages, independent per-query PIR accumulators
// folding the same row) becomes the vector dimension.
//
// Three backends sit behind one API, runtime-dispatched via common/cpuinfo:
//  - scalar  : per-lane calls into MontgomeryContext (always available)
//  - avx2    : 4 lanes per 256-bit vector, reduced-radix 2^32 limbs
//              (vpmuludq 32x32->64 partial products, eager 32-bit carries)
//  - ifma    : 8 lanes per 512-bit vector, radix 2^52 limbs
//              (vpmadd52luq/vpmadd52huq, lazy carries, one normalization
//              sweep at the end)
//
// Operand layout is lane-major ("limb-sliced"): limb i of lane l lives at
// block[i * kMaxLanes + l], so one vector load reads limb i of every lane.
// Lane counts 1..8 are all legal; unused lanes are padded internally with a
// copy of lane 0 (valid arithmetic, results discarded).
//
// EQUIVALENCE CONTRACT — the property the differential fuzz test pins and
// the PIR/crypto callers rely on: for every lane l and any operands in the
// scalar engine's representation (k 64-bit limbs, Montgomery form w.r.t.
// R = 2^(64k), fully reduced),
//
//   Unpack(Mul(Pack(a), Pack(b)))[l]    == MontMulInto(a[l], b[l])
//   Unpack(ModExpUniform(Pack(a), e))[l] == ModExpInto(a[l], e)
//   FromMontgomery(Pack(a))[l]          == FromMontgomeryInto(a[l])
//
// bit for bit. The internal radix is invisible: the AVX2 backend's radix
// 2^32 satisfies 2^(32*2k) = R so packing is a pure limb split, while the
// IFMA backend's radix 2^52 changes the Montgomery domain, so Pack/Unpack
// fold one extra lane multiplication by a precomputed constant
// (R52^2 * R^{-1} mod n, resp. R mod n) to convert domains exactly. Both
// backends reduce fully, and the canonical Montgomery product is unique, so
// bit-identity is structural rather than coincidental.
//
// Lanes may carry *different moduli* (they must share one limb width): the
// modulus limbs and n' are themselves lane-sliced vectors. This is what
// lets the batched PIR sweep fold one extracted row into up to 8 queries'
// accumulators — each query has its own n — in a single kernel call.

#ifndef EMBELLISH_BIGNUM_MONTGOMERY_LANES_H_
#define EMBELLISH_BIGNUM_MONTGOMERY_LANES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "common/cpuinfo.h"
#include "common/status.h"

namespace embellish::bignum {

/// \brief Vertical SIMD Montgomery multiplier over 1..8 independent lanes.
class MontgomeryLaneContext {
 public:
  /// \brief Logical lane capacity; also the physical slice stride of every
  ///        Block regardless of backend.
  static constexpr size_t kMaxLanes = 8;

  /// \brief Packed lane-major state: limb i of lane l at [i*kMaxLanes + l],
  ///        in the backend's internal radix and Montgomery domain. Opaque to
  ///        callers; size it with MakeBlock and move it between the scalar
  ///        representation only through Pack/Unpack/FromMontgomery.
  using Block = std::vector<uint64_t>;

  /// \brief Reusable workspace for the lane kernels (accumulator rows,
  ///        staging, exponentiation window). Not thread-safe: one Scratch
  ///        per worker thread, bound to the context that created it (or any
  ///        context of the same limb width and backend).
  class Scratch {
   public:
    explicit Scratch(const MontgomeryLaneContext& ctx);

   private:
    friend class MontgomeryLaneContext;

    void EnsureExpBuffers(const MontgomeryLaneContext& ctx);

    std::vector<uint64_t> t_;       // kernel accumulator + staging rows
    Block tmp_;                     // one-block staging (pack conversion)
    Block sq_;                      // ModExp: base^2
    std::vector<Block> window_;     // ModExp: odd-power table
    MontgomeryContext::Scratch mont_;  // scalar-backend delegation
  };

  /// \brief Builds a lane context over `lanes.size()` (1..kMaxLanes)
  ///        Montgomery contexts of identical 64-bit limb width. Lanes may
  ///        repeat one context (EncryptBatch: one public key) or differ per
  ///        lane (PIR: one modulus per query). The pointed-to contexts must
  ///        outlive the lane context. Dispatches to SelectedKernel().
  static Result<MontgomeryLaneContext> Create(
      std::span<const MontgomeryContext* const> lanes);

  /// \brief As Create, but pins the backend tier explicitly (tests and
  ///        bench sweeps); the request is clamped to what the CPU supports.
  static Result<MontgomeryLaneContext> CreateWithKernel(
      std::span<const MontgomeryContext* const> lanes, MontKernel kernel);

  size_t lanes() const { return lanes_; }
  /// \brief Limb width of the *scalar* representation (64-bit limbs).
  size_t limb_count() const { return k64_; }
  /// \brief The backend tier Create resolved to.
  MontKernel kernel() const { return kernel_; }
  /// \brief True when lane calls execute SIMD vectors (avx2/ifma tiers);
  ///        false means the scalar backend loops over lanes.
  bool vectorized() const { return kernel_ >= MontKernel::kAvx2; }

  /// \brief A zeroed block sized for this context.
  Block MakeBlock() const { return Block(block_words_, 0); }

  /// \brief Montgomery form of 1 per lane, packed (the product identity).
  const Block& One() const { return one_block_; }

  // -- Representation moves ------------------------------------------------

  /// \brief Packs lane values from the scalar representation (limb_count()
  ///        64-bit limbs each, Montgomery form, fully reduced below the
  ///        lane's modulus). `lane_values` holds lanes() pointers.
  void Pack(const uint64_t* const* lane_values, Block* out,
            Scratch* scratch) const;

  /// \brief Inverse of Pack: writes limb_count() 64-bit limbs per lane,
  ///        bit-identical to what the scalar engine would hold.
  void Unpack(const Block& in, uint64_t* const* lane_values,
              Scratch* scratch) const;

  /// \brief Converts out of Montgomery form: writes each lane's plain value
  ///        (aR^{-1}... i.e. a for input aR) as limb_count() 64-bit limbs,
  ///        bit-identical to scalar FromMontgomeryInto.
  void FromMontgomery(const Block& a, uint64_t* const* plain_out,
                      Scratch* scratch) const;

  // -- Arithmetic (all lanes advance together) -----------------------------

  /// \brief out[l] = a[l] * b[l] * R^{-1} mod n_l — the per-lane Montgomery
  ///        product. `out` may alias `a` and/or `b`.
  void Mul(const Block& a, const Block& b, Block* out, Scratch* scratch) const;

  /// \brief out[l] = base[l]^e — one exponent shared by every lane (the
  ///        EncryptBatch u^r / u^n shape). Sliding-window, same schedule as
  ///        the scalar engine. `out` must not alias `base`.
  void ModExpUniform(const Block& base, const BigInt& e, Block* out,
                     Scratch* scratch) const;

  /// \brief out[l] = base[l]^(exps[l]) — per-lane small exponents (the
  ///        EncryptBatch g^m shape; m < 2^64). Square-always /
  ///        multiply-always with a per-lane blend on the exponent bit, so
  ///        divergent exponents never branch. `out` must not alias `base`.
  void ModExpSmall(const Block& base, const uint64_t* exps, Block* out,
                   Scratch* scratch) const;

 private:
  MontgomeryLaneContext() = default;

  // Backend implementations (montgomery_lanes.cc).
  void MulScalar(const Block& a, const Block& b, Block* out,
                 Scratch* scratch) const;
  void MulSimd(const Block& a, const Block& b, Block* out,
               Scratch* scratch) const;
  void BlendByMask(const Block& src, const uint64_t* lane_masks,
                   Block* dst) const;

  size_t lanes_ = 0;          // logical lanes (1..kMaxLanes)
  size_t k64_ = 0;            // scalar limb width
  size_t ki_ = 0;             // internal limb width (radix-dependent)
  size_t block_words_ = 0;    // ki_ * kMaxLanes (scalar backend: k64_ * lanes_)
  MontKernel kernel_ = MontKernel::kScalar;

  std::vector<const MontgomeryContext*> contexts_;  // per lane, not owned

  // SIMD backends: lane-sliced modulus limbs (internal radix), per-lane
  // n' = -n^{-1} mod 2^radix, packed Montgomery one, and — IFMA only — the
  // domain-conversion constants described in the header comment.
  std::vector<uint64_t> n_block_;
  std::vector<uint64_t> nprime_lanes_;
  Block one_block_;
  Block to_internal_;    // Pack:   multiply by R52^2 * R^{-1} mod n
  Block from_internal_;  // Unpack: multiply by R mod n
  Block plain_one_;      // FromMontgomery: multiply by 1
};

}  // namespace embellish::bignum

#endif  // EMBELLISH_BIGNUM_MONTGOMERY_LANES_H_
