// Arbitrary-precision unsigned integer arithmetic.
//
// BigInt is the numeric substrate for the crypto module (Benaloh, Paillier,
// KO-PIR all work in Z*_n for an RSA-style modulus n). Values are
// non-negative; magnitudes are stored as little-endian 64-bit limbs with no
// trailing zero limbs (canonical form). The class is value-semantic and
// deterministic; nothing here allocates global state.
//
// Algorithms: schoolbook add/sub/mul with a Karatsuba path for large
// operands, Knuth Algorithm D division (TAOCP vol. 2, 4.3.1), binary
// left-to-right exponentiation (modexp lives in modmath.h / montgomery.h).

#ifndef EMBELLISH_BIGNUM_BIGINT_H_
#define EMBELLISH_BIGNUM_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace embellish::bignum {

/// \brief Arbitrary-precision unsigned integer.
class BigInt {
 public:
  /// \brief Constructs zero.
  BigInt() = default;

  /// \brief Constructs from a machine word.
  BigInt(uint64_t v);  // NOLINT(runtime/explicit): numeric promotion intended

  /// \brief Parses a decimal string ("12345"). Rejects empty/invalid input.
  static Result<BigInt> FromDecimalString(std::string_view s);

  /// \brief Parses a hexadecimal string without 0x prefix ("deadBEEF").
  static Result<BigInt> FromHexString(std::string_view s);

  /// \brief Builds from big-endian bytes (empty => zero).
  static BigInt FromBigEndianBytes(const std::vector<uint8_t>& bytes);

  /// \brief Value with only bit `bit` set (i.e. 2^bit).
  static BigInt PowerOfTwo(size_t bit);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1) != 0; }
  bool IsEven() const { return !IsOdd(); }

  /// \brief Number of significant bits; 0 for zero.
  size_t BitLength() const;

  /// \brief Number of limbs in canonical form.
  size_t LimbCount() const { return limbs_.size(); }

  /// \brief Bit value at position `i` (0 = least significant).
  bool Bit(size_t i) const;

  /// \brief Low 64 bits of the value (truncating).
  uint64_t Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// \brief True if the value fits in a uint64_t.
  bool FitsUint64() const { return limbs_.size() <= 1; }

  std::string ToDecimalString() const;
  std::string ToHexString() const;

  /// \brief Big-endian byte serialization, no leading zero bytes (zero => {}).
  std::vector<uint8_t> ToBigEndianBytes() const;

  /// \brief Big-endian serialization padded to exactly `n` bytes. The value
  ///        is expected to fit in `n` bytes (asserted in Debug); a wider
  ///        value is reduced mod 2^(8n) so the result width always holds.
  std::vector<uint8_t> ToBigEndianBytesPadded(size_t n) const;

  // -- Arithmetic (value-returning; all operands unsigned) --

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  /// \brief Requires a >= b (asserts in debug builds).
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, size_t shift);
  friend BigInt operator>>(const BigInt& a, size_t shift);

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  /// \brief Simultaneous quotient and remainder. `b` must be nonzero.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) = default;

  /// \brief Access to raw limbs (little-endian), for Montgomery internals.
  const std::vector<uint64_t>& limbs() const { return limbs_; }

  /// \brief Constructs from raw limbs; normalizes trailing zeros.
  static BigInt FromLimbs(std::vector<uint64_t> limbs);

 private:
  void Normalize();

  static BigInt MulSchoolbook(const BigInt& a, const BigInt& b);
  static BigInt MulKaratsuba(const BigInt& a, const BigInt& b);

  // Little-endian limbs; canonical (no trailing zeros). Empty == 0.
  std::vector<uint64_t> limbs_;
};

}  // namespace embellish::bignum

#endif  // EMBELLISH_BIGNUM_BIGINT_H_
