// Primality testing and prime generation for crypto key setup.

#ifndef EMBELLISH_BIGNUM_PRIME_H_
#define EMBELLISH_BIGNUM_PRIME_H_

#include "bignum/bigint.h"
#include "common/rng.h"
#include "common/status.h"

namespace embellish::bignum {

/// \brief Miller-Rabin probabilistic primality test.
///
/// Runs trial division by small primes first, then `rounds` random-base
/// Miller-Rabin witnesses (error probability <= 4^-rounds).
bool IsProbablePrime(const BigInt& n, Rng* rng, int rounds = 32);

/// \brief Uniform prime with exactly `bits` bits (top bit set). bits >= 8.
BigInt RandomPrime(size_t bits, Rng* rng);

/// \brief Random prime p ≡ 1 (mod r) with exactly `bits` bits, subject to
///        gcd(r, (p-1)/r) == 1 — the Benaloh key-generation condition on p1.
///        `r` must be >= 2 and small relative to 2^bits.
Result<BigInt> RandomPrimeCongruentOneModR(size_t bits, const BigInt& r,
                                           Rng* rng);

/// \brief Random prime p with exactly `bits` bits and gcd(r, p-1) == 1 —
///        the Benaloh condition on p2.
Result<BigInt> RandomPrimeCoprimePMinus1(size_t bits, const BigInt& r,
                                         Rng* rng);

}  // namespace embellish::bignum

#endif  // EMBELLISH_BIGNUM_PRIME_H_
