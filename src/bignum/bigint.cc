#include "bignum/bigint.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cctype>

#include "common/strings.h"

namespace embellish::bignum {

namespace {

using u128 = unsigned __int128;

constexpr size_t kKaratsubaThresholdLimbs = 24;

}  // namespace

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromLimbs(std::vector<uint64_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

Result<BigInt> BigInt::FromDecimalString(std::string_view s) {
  if (s.empty()) {
    return Status::InvalidArgument("empty decimal string");
  }
  BigInt out;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          StringPrintf("invalid decimal digit '%c'", c));
    }
    out = out * BigInt(10) + BigInt(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

Result<BigInt> BigInt::FromHexString(std::string_view s) {
  if (s.empty()) {
    return Status::InvalidArgument("empty hex string");
  }
  BigInt out;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument(
          StringPrintf("invalid hex digit '%c'", c));
    }
    out = (out << 4) + BigInt(digit);
  }
  return out;
}

BigInt BigInt::FromBigEndianBytes(const std::vector<uint8_t>& bytes) {
  BigInt out;
  size_t n = bytes.size();
  if (n == 0) return out;
  out.limbs_.assign((n + 7) / 8, 0);
  for (size_t i = 0; i < n; ++i) {
    // bytes[i] is the (n-1-i)-th byte from the least-significant end.
    size_t pos = n - 1 - i;
    out.limbs_[pos / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (pos % 8));
  }
  out.Normalize();
  return out;
}

BigInt BigInt::PowerOfTwo(size_t bit) {
  BigInt out;
  out.limbs_.assign(bit / 64 + 1, 0);
  out.limbs_.back() = 1ULL << (bit % 64);
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         (64 - static_cast<size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return ((limbs_[limb] >> (i % 64)) & 1) != 0;
}

std::vector<uint8_t> BigInt::ToBigEndianBytes() const {
  std::vector<uint8_t> out;
  size_t bits = BitLength();
  if (bits == 0) return out;
  size_t nbytes = (bits + 7) / 8;
  out.resize(nbytes);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t pos = nbytes - 1 - i;
    out[i] = static_cast<uint8_t>(limbs_[pos / 8] >> (8 * (pos % 8)));
  }
  return out;
}

std::vector<uint8_t> BigInt::ToBigEndianBytesPadded(size_t n) const {
  std::vector<uint8_t> raw = ToBigEndianBytes();
  assert(raw.size() <= n && "value does not fit in requested width");
  if (raw.size() > n) {
    // Defined Release-build fallback: keep the low-order n bytes (the value
    // mod 2^(8n)) instead of computing an out-of-range iterator below.
    raw.erase(raw.begin(), raw.begin() + static_cast<long>(raw.size() - n));
    return raw;
  }
  std::vector<uint8_t> out(n, 0);
  std::copy(raw.begin(), raw.end(), out.begin() + (n - raw.size()));
  return out;
}

std::string BigInt::ToHexString() const {
  if (limbs_.empty()) return "0";
  std::string out;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(limbs_.back()));
  out += buf;
  for (size_t i = limbs_.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(limbs_[i]));
    out += buf;
  }
  return out;
}

std::string BigInt::ToDecimalString() const {
  if (limbs_.empty()) return "0";
  // Repeated division by 10^19 (largest power of ten in a uint64).
  constexpr uint64_t kChunk = 10000000000000000000ULL;
  constexpr int kChunkDigits = 19;
  std::vector<uint64_t> chunks;
  BigInt tmp = *this;
  const BigInt divisor(kChunk);
  while (!tmp.IsZero()) {
    BigInt q, r;
    DivMod(tmp, divisor, &q, &r);
    chunks.push_back(r.Low64());
    tmp = std::move(q);
  }
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(kChunkDigits - part.size(), '0') + part;
  }
  return out;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  const auto& x = a.limbs_.size() >= b.limbs_.size() ? a.limbs_ : b.limbs_;
  const auto& y = a.limbs_.size() >= b.limbs_.size() ? b.limbs_ : a.limbs_;
  out.limbs_.resize(x.size());
  uint64_t carry = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    u128 sum = static_cast<u128>(x[i]) + (i < y.size() ? y[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  assert(a >= b && "BigInt subtraction would underflow");
  BigInt out;
  out.limbs_.resize(a.limbs_.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    u128 diff = static_cast<u128>(a.limbs_[i]) - bi - borrow;
    out.limbs_[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) != 0 ? 1 : 0;  // two's-complement high bits on wrap
  }
  out.Normalize();
  return out;
}

BigInt BigInt::MulSchoolbook(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.IsZero() || b.IsZero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    if (ai == 0) continue;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

BigInt BigInt::MulKaratsuba(const BigInt& a, const BigInt& b) {
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  if (std::min(a.limbs_.size(), b.limbs_.size()) < kKaratsubaThresholdLimbs) {
    return MulSchoolbook(a, b);
  }
  size_t half = n / 2;
  auto split = [half](const BigInt& v) {
    BigInt lo, hi;
    if (v.limbs_.size() <= half) {
      lo = v;
    } else {
      lo.limbs_.assign(v.limbs_.begin(), v.limbs_.begin() + half);
      lo.Normalize();
      hi.limbs_.assign(v.limbs_.begin() + half, v.limbs_.end());
      hi.Normalize();
    }
    return std::pair<BigInt, BigInt>(std::move(lo), std::move(hi));
  };
  auto [a_lo, a_hi] = split(a);
  auto [b_lo, b_hi] = split(b);
  BigInt z0 = MulKaratsuba(a_lo, b_lo);
  BigInt z2 = MulKaratsuba(a_hi, b_hi);
  BigInt z1 = MulKaratsuba(a_lo + a_hi, b_lo + b_hi) - z0 - z2;
  return (z2 << (128 * half)) + (z1 << (64 * half)) + z0;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (std::min(a.limbs_.size(), b.limbs_.size()) >= kKaratsubaThresholdLimbs) {
    return BigInt::MulKaratsuba(a, b);
  }
  return BigInt::MulSchoolbook(a, b);
}

BigInt operator<<(const BigInt& a, size_t shift) {
  if (a.IsZero() || shift == 0) return a;
  size_t limb_shift = shift / 64;
  size_t bit_shift = shift % 64;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= a.limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigInt operator>>(const BigInt& a, size_t shift) {
  size_t limb_shift = shift / 64;
  size_t bit_shift = shift % 64;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  assert(!b.IsZero() && "division by zero");
  if (a < b) {
    if (quotient) *quotient = BigInt();
    if (remainder) *remainder = a;
    return;
  }
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor via 128/64 division.
    uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    u128 rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigInt(static_cast<uint64_t>(rem));
    return;
  }

  // Knuth Algorithm D (TAOCP 4.3.1) with 64-bit digits.
  const int shift = std::countl_zero(b.limbs_.back());
  BigInt u = a << static_cast<size_t>(shift);
  BigInt v = b << static_cast<size_t>(shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;
  u.limbs_.resize(u.limbs_.size() + 1, 0);  // u has m+n+1 digits

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t v_hi = v.limbs_[n - 1];
  const uint64_t v_lo = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate qhat = (u[j+n]*B + u[j+n-1]) / v[n-1].
    u128 numerator = (static_cast<u128>(u.limbs_[j + n]) << 64) |
                     u.limbs_[j + n - 1];
    u128 qhat = numerator / v_hi;
    u128 rhat = numerator % v_hi;
    constexpr u128 kBase = static_cast<u128>(1) << 64;
    while (qhat >= kBase ||
           qhat * v_lo > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_hi;
      if (rhat >= kBase) break;
    }

    // Multiply-and-subtract: u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 prod = qhat * v.limbs_[i] + carry;
      carry = prod >> 64;
      uint64_t prod_lo = static_cast<uint64_t>(prod);
      u128 diff = static_cast<u128>(u.limbs_[j + i]) - prod_lo - borrow;
      u.limbs_[j + i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
    u128 diff = static_cast<u128>(u.limbs_[j + n]) - carry - borrow;
    u.limbs_[j + n] = static_cast<uint64_t>(diff);
    bool negative = (diff >> 64) != 0;

    if (negative) {
      // qhat was one too large; add v back.
      --qhat;
      u128 add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + add_carry;
        u.limbs_[j + i] = static_cast<uint64_t>(sum);
        add_carry = sum >> 64;
      }
      u.limbs_[j + n] += static_cast<uint64_t>(add_carry);
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.Normalize();
  if (quotient) *quotient = std::move(q);
  if (remainder) {
    BigInt r;
    r.limbs_.assign(u.limbs_.begin(), u.limbs_.begin() + n);
    r.Normalize();
    *remainder = r >> static_cast<size_t>(shift);
  }
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q;
  BigInt::DivMod(a, b, &q, nullptr);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt r;
  BigInt::DivMod(a, b, nullptr, &r);
  return r;
}

}  // namespace embellish::bignum
