#include "bignum/modmath.h"

#include <cassert>

#include "bignum/montgomery.h"

namespace embellish::bignum {

namespace {

// Reduces `v` only when needed; already-reduced values (the common case for
// chained modular arithmetic) cost one comparison instead of a division.
const BigInt& ReduceInto(const BigInt& v, const BigInt& m, BigInt* storage) {
  if (v < m) return v;
  *storage = v % m;
  return *storage;
}

}  // namespace

BigInt ModAdd(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt sa, sb;
  const BigInt& ra = ReduceInto(a, m, &sa);
  const BigInt& rb = ReduceInto(b, m, &sb);
  BigInt sum = ra + rb;
  // ra, rb < m, so sum < 2m: one subtraction replaces the final division.
  if (sum >= m) sum -= m;
  return sum;
}

BigInt ModSub(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt sa, sb;
  const BigInt& ra = ReduceInto(a, m, &sa);
  const BigInt& rb = ReduceInto(b, m, &sb);
  if (ra >= rb) return ra - rb;
  return ra + m - rb;
}

BigInt ModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt sa, sb;
  const BigInt& ra = ReduceInto(a, m, &sa);
  const BigInt& rb = ReduceInto(b, m, &sb);
  return ra * rb % m;
}

BigInt ModMulReduced(const BigInt& a, const BigInt& b, const BigInt& m) {
  assert(a < m && b < m);
  return a * b % m;
}

BigInt ModExp(const BigInt& a, const BigInt& e, const BigInt& m) {
  assert(!m.IsZero());
  if (m.IsOne()) return BigInt();
  if (m.IsOdd() && m.LimbCount() >= 2) {
    auto ctx = MontgomeryContext::Create(m);
    if (ctx.ok()) return ctx->ModExp(a, e);
  }
  BigInt base = a % m;
  BigInt result(1);
  for (size_t i = e.BitLength(); i-- > 0;) {
    result = result * result % m;
    if (e.Bit(i)) result = result * base % m;
  }
  return result;
}

BigInt Gcd(const BigInt& a, const BigInt& b) {
  // Euclid; BigInt division is fast enough for crypto-sized operands and the
  // code is simpler than binary GCD with vector limb surgery.
  BigInt x = a;
  BigInt y = b;
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

Result<BigInt> ModInverse(const BigInt& a, const BigInt& m) {
  if (m.IsZero() || m.IsOne()) {
    return Status::InvalidArgument("modulus must be > 1");
  }
  // Extended Euclid tracking only the coefficient of `a`, with values kept
  // non-negative by representing the sign separately.
  BigInt r0 = m;
  BigInt r1 = a % m;
  BigInt t0;        // coefficient for m  (starts 0)
  BigInt t1(1);     // coefficient for a  (starts 1)
  bool t0_neg = false;
  bool t1_neg = false;
  while (!r1.IsZero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    // t2 = t0 - q*t1, in sign-magnitude form.
    BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!r0.IsOne()) {
    return Status::InvalidArgument("value is not invertible (gcd != 1)");
  }
  BigInt inv = t0 % m;
  if (t0_neg && !inv.IsZero()) inv = m - inv;
  return inv;
}

int Jacobi(const BigInt& a_in, const BigInt& n_in) {
  assert(n_in.IsOdd() && !n_in.IsZero());
  BigInt a = a_in % n_in;
  BigInt n = n_in;
  int result = 1;
  while (!a.IsZero()) {
    // Pull out factors of two; each contributes (2/n) = (-1)^((n^2-1)/8).
    while (a.IsEven()) {
      a = a >> 1;
      uint64_t n_mod8 = n.Low64() & 7;
      if (n_mod8 == 3 || n_mod8 == 5) result = -result;
    }
    std::swap(a, n);
    // Quadratic reciprocity: flip sign when both are 3 (mod 4).
    if ((a.Low64() & 3) == 3 && (n.Low64() & 3) == 3) result = -result;
    a = a % n;
  }
  if (n.IsOne()) return result;
  return 0;
}

BigInt RandomBelow(const BigInt& bound, Rng* rng) {
  assert(!bound.IsZero());
  size_t bits = bound.BitLength();
  size_t nbytes = (bits + 7) / 8;
  std::vector<uint8_t> buf(nbytes);
  // Rejection sampling: mask the top byte to the bound's width, retry on
  // overshoot. Expected < 2 iterations.
  const uint8_t top_mask =
      static_cast<uint8_t>(0xFF >> ((8 - bits % 8) % 8));
  while (true) {
    rng->FillBytes(buf.data(), buf.size());
    buf[0] &= top_mask;
    BigInt candidate = BigInt::FromBigEndianBytes(buf);
    if (candidate < bound) return candidate;
  }
}

BigInt RandomBits(size_t bits, Rng* rng) {
  assert(bits > 0);
  size_t nbytes = (bits + 7) / 8;
  std::vector<uint8_t> buf(nbytes);
  rng->FillBytes(buf.data(), buf.size());
  const uint8_t top_mask =
      static_cast<uint8_t>(0xFF >> ((8 - bits % 8) % 8));
  buf[0] &= top_mask;
  // Force the top bit so the value has exactly `bits` bits.
  buf[0] |= static_cast<uint8_t>(1u << ((bits - 1) % 8));
  return BigInt::FromBigEndianBytes(buf);
}

BigInt RandomUnit(const BigInt& n, Rng* rng) {
  assert(n > BigInt(1));
  while (true) {
    BigInt candidate = RandomBelow(n, rng);
    if (candidate.IsZero()) continue;
    if (Gcd(candidate, n).IsOne()) return candidate;
  }
}

}  // namespace embellish::bignum
